package spec_test

import (
	"bytes"
	"errors"
	"math/rand"
	"strings"
	"testing"
	"testing/quick"

	"ickpt/ckpt"
	"ickpt/spec"
	"ickpt/wire"
)

// Fixture: a root with two linked lists and one plain child, shaped like the
// paper's synthetic compound structures.

var (
	typeRoot = ckpt.TypeIDOf("spectest.Root")
	typeElem = ckpt.TypeIDOf("spectest.Elem")
	typeMeta = ckpt.TypeIDOf("spectest.Meta")
)

type elem struct {
	Info   ckpt.Info
	V0, V1 int64
	Next   *elem
}

func (e *elem) CheckpointInfo() *ckpt.Info    { return &e.Info }
func (e *elem) CheckpointTypeID() ckpt.TypeID { return typeElem }
func (e *elem) Record(enc *wire.Encoder) {
	enc.Varint(e.V0)
	enc.Varint(e.V1)
	enc.Uvarint(idOf(e.Next))
}
func (e *elem) Fold(w *ckpt.Writer) error {
	if e.Next != nil {
		return w.Checkpoint(e.Next)
	}
	return nil
}

type meta struct {
	Info ckpt.Info
	Tag  string
}

func (m *meta) CheckpointInfo() *ckpt.Info    { return &m.Info }
func (m *meta) CheckpointTypeID() ckpt.TypeID { return typeMeta }
func (m *meta) Record(enc *wire.Encoder)      { enc.String(m.Tag) }
func (m *meta) Fold(*ckpt.Writer) error       { return nil }

type root struct {
	Info ckpt.Info
	N    int64
	A    *elem
	B    *elem
	Meta *meta
}

func (r *root) CheckpointInfo() *ckpt.Info    { return &r.Info }
func (r *root) CheckpointTypeID() ckpt.TypeID { return typeRoot }
func (r *root) Record(enc *wire.Encoder) {
	enc.Varint(r.N)
	enc.Uvarint(idOf(r.A))
	enc.Uvarint(idOf(r.B))
	if r.Meta != nil {
		enc.Uvarint(r.Meta.Info.ID())
	} else {
		enc.Uvarint(ckpt.NilID)
	}
}
func (r *root) Fold(w *ckpt.Writer) error {
	if r.A != nil {
		if err := w.Checkpoint(r.A); err != nil {
			return err
		}
	}
	if r.B != nil {
		if err := w.Checkpoint(r.B); err != nil {
			return err
		}
	}
	if r.Meta != nil {
		return w.Checkpoint(r.Meta)
	}
	return nil
}

func idOf(e *elem) uint64 {
	if e == nil {
		return ckpt.NilID
	}
	return e.Info.ID()
}

// catalog builds the specialization catalog for the fixture types.
func catalog(t testing.TB) *spec.Catalog {
	cat := spec.NewCatalog()
	cat.MustRegister(spec.Class{
		Name:   "Elem",
		TypeID: typeElem,
		GoType: "*elem",
		Fields: []spec.Field{
			{Name: "V0", Kind: spec.Int, Go: "o.V0"},
			{Name: "V1", Kind: spec.Int, Go: "o.V1"},
		},
		Children: []spec.Child{
			{Name: "Next", Class: "Elem", Go: "o.Next"},
		},
		NextChild: 0,
	}, spec.Binding{
		Info:   func(o any) *ckpt.Info { return &o.(*elem).Info },
		Record: func(o any, e *wire.Encoder) { o.(*elem).Record(e) },
		Child: func(o any, i int) any {
			if n := o.(*elem).Next; n != nil {
				return n
			}
			return nil
		},
	})
	cat.MustRegister(spec.Class{
		Name:      "Meta",
		TypeID:    typeMeta,
		GoType:    "*meta",
		Fields:    []spec.Field{{Name: "Tag", Kind: spec.String, Go: "o.Tag"}},
		NextChild: -1,
	}, spec.Binding{
		Info:   func(o any) *ckpt.Info { return &o.(*meta).Info },
		Record: func(o any, e *wire.Encoder) { o.(*meta).Record(e) },
	})
	cat.MustRegister(spec.Class{
		Name:   "Root",
		TypeID: typeRoot,
		GoType: "*root",
		Fields: []spec.Field{{Name: "N", Kind: spec.Int, Go: "o.N"}},
		Children: []spec.Child{
			{Name: "A", Class: "Elem", List: true, Go: "o.A"},
			{Name: "B", Class: "Elem", List: true, Go: "o.B"},
			{Name: "Meta", Class: "Meta", Go: "o.Meta"},
		},
		NextChild: -1,
	}, spec.Binding{
		Info:   func(o any) *ckpt.Info { return &o.(*root).Info },
		Record: func(o any, e *wire.Encoder) { o.(*root).Record(e) },
		Child: func(o any, i int) any {
			r := o.(*root)
			switch i {
			case 0:
				if r.A != nil {
					return r.A
				}
			case 1:
				if r.B != nil {
					return r.B
				}
			case 2:
				if r.Meta != nil {
					return r.Meta
				}
			}
			return nil
		},
	})
	return cat
}

// build constructs a root with two lists of the given lengths.
func build(d *ckpt.Domain, lenA, lenB int) *root {
	r := &root{Info: ckpt.NewInfo(d), N: 7}
	mk := func(n int) *elem {
		var head *elem
		for i := n - 1; i >= 0; i-- {
			e := &elem{Info: ckpt.NewInfo(d), V0: int64(i), V1: int64(-i)}
			e.Next = head
			head = e
		}
		return head
	}
	r.A = mk(lenA)
	r.B = mk(lenB)
	r.Meta = &meta{Info: ckpt.NewInfo(d), Tag: "m"}
	return r
}

// drain takes one incremental checkpoint to clear all initial flags.
func drain(t testing.TB, r *root) {
	w := ckpt.NewWriter()
	w.Start(ckpt.Incremental)
	if err := w.Checkpoint(r); err != nil {
		t.Fatal(err)
	}
	if _, _, err := w.Finish(); err != nil {
		t.Fatal(err)
	}
}

// genericBody checkpoints r with the generic driver.
func genericBody(t testing.TB, r *root, mode ckpt.Mode) ([]byte, ckpt.Stats) {
	w := ckpt.NewWriter()
	w.Start(mode)
	if err := w.Checkpoint(r); err != nil {
		t.Fatal(err)
	}
	b, stats, err := w.Finish()
	if err != nil {
		t.Fatal(err)
	}
	return append([]byte(nil), b...), stats
}

// planBody checkpoints r with a compiled plan.
func planBody(t testing.TB, p *spec.Plan, r *root) ([]byte, ckpt.Stats, error) {
	w := ckpt.NewWriter()
	w.Start(p.Mode())
	err := p.Execute(w, r)
	if err != nil {
		return nil, ckpt.Stats{}, err
	}
	b, stats, ferr := w.Finish()
	if ferr != nil {
		t.Fatal(ferr)
	}
	return append([]byte(nil), b...), stats, nil
}

// twin builds two identical universes and applies the same mutation to both.
func twin(t testing.TB, lenA, lenB int, mutate func(*root)) (*root, *root) {
	d1, d2 := ckpt.NewDomain(), ckpt.NewDomain()
	r1, r2 := build(d1, lenA, lenB), build(d2, lenA, lenB)
	drain(t, r1)
	drain(t, r2)
	if mutate != nil {
		mutate(r1)
		mutate(r2)
	}
	return r1, r2
}

func TestPlanMatchesGenericStructureOnly(t *testing.T) {
	mutate := func(r *root) {
		r.A.V0 = 100
		r.A.Info.SetModified()
		r.B.Next.V1 = -100
		r.B.Next.Info.SetModified()
		r.Meta.Tag = "changed"
		r.Meta.Info.SetModified()
	}
	r1, r2 := twin(t, 3, 3, mutate)

	want, wstats := genericBody(t, r1, ckpt.Incremental)

	p, err := spec.Compile(catalog(t), "Root", nil)
	if err != nil {
		t.Fatalf("Compile: %v", err)
	}
	got, gstats, err := planBody(t, p, r2)
	if err != nil {
		t.Fatalf("Execute: %v", err)
	}
	if !bytes.Equal(want, got) {
		t.Errorf("plan body differs from generic body\n  generic %x\n  plan    %x", want, got)
	}
	if wstats.Recorded != gstats.Recorded || wstats.Visited != gstats.Visited {
		t.Errorf("stats differ: generic %+v plan %+v", wstats, gstats)
	}
}

func TestPlanFullModeMatchesGeneric(t *testing.T) {
	r1, r2 := twin(t, 2, 4, nil)
	want, _ := genericBody(t, r1, ckpt.Full)

	p, err := spec.Compile(catalog(t), "Root", nil, spec.WithMode(ckpt.Full))
	if err != nil {
		t.Fatal(err)
	}
	got, _, err := planBody(t, p, r2)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(want, got) {
		t.Error("full-mode plan body differs from generic full body")
	}
}

func TestPatternPrunesCleanSubtrees(t *testing.T) {
	// Phase modifies only list A; B and Meta stay clean.
	pat := &spec.Pattern{
		Name: "phaseA",
		Children: map[string]spec.ChildMod{
			"Root.B":    spec.ChildUnmodified,
			"Root.Meta": spec.ChildUnmodified,
		},
	}
	mutate := func(r *root) {
		for e := r.A; e != nil; e = e.Next {
			e.V0 += 5
			e.Info.SetModified()
		}
		r.N = 8
		r.Info.SetModified()
	}
	r1, r2 := twin(t, 5, 5, mutate)
	want, _ := genericBody(t, r1, ckpt.Incremental)

	p, err := spec.Compile(catalog(t), "Root", pat)
	if err != nil {
		t.Fatal(err)
	}
	got, stats, err := planBody(t, p, r2)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(want, got) {
		t.Error("pruned plan body differs from generic body")
	}
	// Pruning must shrink the traversal: root + 5 A-elements.
	if stats.Visited != 6 {
		t.Errorf("plan visited %d objects, want 6", stats.Visited)
	}
	ps := p.Stats()
	if ps.PrunedEdges != 2 {
		t.Errorf("PrunedEdges = %d, want 2", ps.PrunedEdges)
	}
}

func TestClassUnmodifiedElidesTest(t *testing.T) {
	// Root itself is declared unmodified, but its children may be dirty:
	// the Root node stays in the traversal with its test and record code
	// elided (a recordNever node). Meta is also clean and — having no
	// dirty descendants — is pruned outright: pruning subsumes elision.
	pat := &spec.Pattern{
		Name: "noRootNoMeta",
		Classes: map[string]spec.ClassMod{
			"Root": spec.ClassUnmodified,
			"Meta": spec.ClassUnmodified,
		},
	}
	r1, r2 := twin(t, 2, 2, func(r *root) {
		r.A.V0 = 1
		r.A.Info.SetModified()
	})
	want, _ := genericBody(t, r1, ckpt.Incremental)

	p, err := spec.Compile(catalog(t), "Root", pat)
	if err != nil {
		t.Fatal(err)
	}
	if p.Stats().ElidedTests != 1 {
		t.Errorf("ElidedTests = %d, want 1 (Root)", p.Stats().ElidedTests)
	}
	if p.Stats().PrunedEdges != 1 {
		t.Errorf("PrunedEdges = %d, want 1 (Root.Meta)", p.Stats().PrunedEdges)
	}
	got, _, err := planBody(t, p, r2)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(want, got) {
		t.Error("elided-test plan body differs from generic body")
	}
}

func TestLastElementOnly(t *testing.T) {
	pat := &spec.Pattern{
		Name: "tails",
		Children: map[string]spec.ChildMod{
			"Root.A":    spec.LastElementOnly,
			"Root.B":    spec.LastElementOnly,
			"Root.Meta": spec.ChildUnmodified,
		},
	}
	mutate := func(r *root) {
		last := r.A
		for last.Next != nil {
			last = last.Next
		}
		last.V0 = 77
		last.Info.SetModified()
		// B's last element stays unmodified: still legal under the
		// pattern ("may be modified").
	}
	r1, r2 := twin(t, 5, 5, mutate)
	want, _ := genericBody(t, r1, ckpt.Incremental)

	p, err := spec.Compile(catalog(t), "Root", pat)
	if err != nil {
		t.Fatal(err)
	}
	if p.Stats().LastOnlyLists != 2 {
		t.Errorf("LastOnlyLists = %d, want 2", p.Stats().LastOnlyLists)
	}
	got, stats, err := planBody(t, p, r2)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(want, got) {
		t.Error("last-only plan body differs from generic body")
	}
	// Only root + the two last elements are visited.
	if stats.Visited != 3 {
		t.Errorf("visited = %d, want 3", stats.Visited)
	}
}

func TestVerifyDetectsPatternViolation(t *testing.T) {
	pat := &spec.Pattern{
		Name:    "noMeta",
		Classes: map[string]spec.ClassMod{"Meta": spec.ClassUnmodified},
		// Keep Meta in the traversal so the violation is observable:
		// without an override the clean subtree would be pruned.
	}
	// Force traversal by making Meta the root: compile a plan for Meta.
	p, err := spec.Compile(catalog(t), "Meta", pat, spec.WithVerify())
	if err != nil {
		t.Fatal(err)
	}
	d := ckpt.NewDomain()
	m := &meta{Info: ckpt.NewInfo(d), Tag: "x"} // new object: dirty

	w := ckpt.NewWriter()
	w.Start(ckpt.Incremental)
	if err := p.Execute(w, m); !errors.Is(err, spec.ErrPatternViolated) {
		t.Errorf("Execute = %v, want ErrPatternViolated", err)
	}
}

func TestVerifyDetectsDirtyNonFinalElement(t *testing.T) {
	pat := &spec.Pattern{
		Name: "tails",
		Children: map[string]spec.ChildMod{
			"Root.A":    spec.LastElementOnly,
			"Root.B":    spec.ChildUnmodified,
			"Root.Meta": spec.ChildUnmodified,
		},
	}
	d := ckpt.NewDomain()
	r := build(d, 4, 1)
	drain(t, r)
	r.A.Next.V0 = 9 // dirty a non-final element
	r.A.Next.Info.SetModified()

	p, err := spec.Compile(catalog(t), "Root", pat, spec.WithVerify())
	if err != nil {
		t.Fatal(err)
	}
	w := ckpt.NewWriter()
	w.Start(ckpt.Incremental)
	if err := p.Execute(w, r); !errors.Is(err, spec.ErrPatternViolated) {
		t.Errorf("Execute = %v, want ErrPatternViolated", err)
	}
}

func TestExecuteModeMismatch(t *testing.T) {
	p, err := spec.Compile(catalog(t), "Root", nil) // incremental
	if err != nil {
		t.Fatal(err)
	}
	d := ckpt.NewDomain()
	r := build(d, 1, 1)
	w := ckpt.NewWriter()
	w.Start(ckpt.Full)
	if err := p.Execute(w, r); err == nil {
		t.Error("Execute with mismatched mode succeeded")
	}
}

func TestCompileErrors(t *testing.T) {
	cat := catalog(t)
	if _, err := spec.Compile(cat, "Nope", nil); !errors.Is(err, spec.ErrClass) {
		t.Errorf("unknown root = %v, want ErrClass", err)
	}
	bad := &spec.Pattern{Name: "bad", Classes: map[string]spec.ClassMod{"Nope": spec.ClassUnmodified}}
	if _, err := spec.Compile(cat, "Root", bad); !errors.Is(err, spec.ErrPattern) {
		t.Errorf("unknown pattern class = %v, want ErrPattern", err)
	}
	bad2 := &spec.Pattern{Name: "bad2", Children: map[string]spec.ChildMod{"Root.Nope": spec.ChildUnmodified}}
	if _, err := spec.Compile(cat, "Root", bad2); !errors.Is(err, spec.ErrPattern) {
		t.Errorf("unknown pattern child = %v, want ErrPattern", err)
	}
	bad3 := &spec.Pattern{Name: "bad3", Children: map[string]spec.ChildMod{"Root.Meta": spec.LastElementOnly}}
	if _, err := spec.Compile(cat, "Root", bad3); !errors.Is(err, spec.ErrPattern) {
		t.Errorf("LastElementOnly on non-list = %v, want ErrPattern", err)
	}
}

func TestCatalogRegistrationErrors(t *testing.T) {
	cat := spec.NewCatalog()
	cl := spec.Class{Name: "X", TypeID: 1, NextChild: -1}
	b := spec.Binding{
		Info:   func(any) *ckpt.Info { return nil },
		Record: func(any, *wire.Encoder) {},
	}
	if err := cat.Register(cl, b); err != nil {
		t.Fatalf("Register: %v", err)
	}
	if err := cat.Register(cl, b); !errors.Is(err, spec.ErrClass) {
		t.Errorf("duplicate Register = %v, want ErrClass", err)
	}
	if err := cat.Register(spec.Class{Name: "", NextChild: -1}, b); !errors.Is(err, spec.ErrClass) {
		t.Errorf("empty name = %v, want ErrClass", err)
	}
	if err := cat.Register(spec.Class{Name: "Y", NextChild: -1}, spec.Binding{}); !errors.Is(err, spec.ErrBinding) {
		t.Errorf("missing accessors = %v, want ErrBinding", err)
	}
	// Next pointer that is not last.
	badNext := spec.Class{
		Name: "Z", NextChild: 0,
		Children: []spec.Child{
			{Name: "Next", Class: "Z"},
			{Name: "Other", Class: "X"},
		},
	}
	bc := b
	bc.Child = func(any, int) any { return nil }
	if err := cat.Register(badNext, bc); !errors.Is(err, spec.ErrClass) {
		t.Errorf("next-not-last = %v, want ErrClass", err)
	}
	// Children but no Child accessor.
	noChildAcc := spec.Class{
		Name: "W", NextChild: -1,
		Children: []spec.Child{{Name: "C", Class: "X"}},
	}
	if err := cat.Register(noChildAcc, b); !errors.Is(err, spec.ErrBinding) {
		t.Errorf("missing Child accessor = %v, want ErrBinding", err)
	}
}

func TestCatalogValidateUnknownChildClass(t *testing.T) {
	cat := spec.NewCatalog()
	b := spec.Binding{
		Info:   func(any) *ckpt.Info { return nil },
		Record: func(any, *wire.Encoder) {},
		Child:  func(any, int) any { return nil },
	}
	cat.MustRegister(spec.Class{
		Name: "A", NextChild: -1,
		Children: []spec.Child{{Name: "C", Class: "Missing"}},
	}, b)
	if err := cat.Validate(); !errors.Is(err, spec.ErrClass) {
		t.Errorf("Validate = %v, want ErrClass", err)
	}
	if _, err := spec.Compile(cat, "A", nil); !errors.Is(err, spec.ErrClass) {
		t.Errorf("Compile = %v, want ErrClass", err)
	}
}

func TestPlanString(t *testing.T) {
	pat := &spec.Pattern{
		Name: "phaseA",
		Children: map[string]spec.ChildMod{
			"Root.B":    spec.ChildUnmodified,
			"Root.Meta": spec.ChildUnmodified,
		},
	}
	p, err := spec.Compile(catalog(t), "Root", pat)
	if err != nil {
		t.Fatal(err)
	}
	s := p.String()
	for _, want := range []string{"Root", "if modified { record }", "pruned", ".A -> list"} {
		if !strings.Contains(s, want) {
			t.Errorf("Plan.String() missing %q:\n%s", want, s)
		}
	}
}

// TestQuickPlanAlwaysMatchesGeneric fuzzes modification patterns against
// truthful mutations: for a randomly chosen declared pattern and mutations
// that respect it, the specialized body must equal the generic body.
func TestQuickPlanAlwaysMatchesGeneric(t *testing.T) {
	cat := catalog(t)
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		lenA := 1 + rng.Intn(6)
		lenB := 1 + rng.Intn(6)

		// Random declared pattern.
		mods := []spec.ChildMod{spec.Inherit, spec.ChildUnmodified, spec.LastElementOnly}
		modA := mods[rng.Intn(3)]
		modB := mods[rng.Intn(3)]
		metaClean := rng.Intn(2) == 0
		pat := &spec.Pattern{Name: "fuzz", Children: map[string]spec.ChildMod{}}
		if modA != spec.Inherit {
			pat.Children["Root.A"] = modA
		}
		if modB != spec.Inherit {
			pat.Children["Root.B"] = modB
		}
		if metaClean {
			pat.Classes = map[string]spec.ClassMod{"Meta": spec.ClassUnmodified}
		}

		// Truthful mutation respecting the pattern.
		mutate := func(r *root) {
			touchList := func(head *elem, mod spec.ChildMod) {
				switch mod {
				case spec.ChildUnmodified:
					return
				case spec.LastElementOnly:
					last := head
					for last.Next != nil {
						last = last.Next
					}
					if rng.Intn(2) == 0 {
						last.V0 = rng.Int63n(100)
						last.Info.SetModified()
					}
				default:
					for e := head; e != nil; e = e.Next {
						if rng.Intn(2) == 0 {
							e.V1 = rng.Int63n(100)
							e.Info.SetModified()
						}
					}
				}
			}
			touchList(r.A, modA)
			touchList(r.B, modB)
			if !metaClean && rng.Intn(2) == 0 {
				r.Meta.Tag = "t"
				r.Meta.Info.SetModified()
			}
			if rng.Intn(2) == 0 {
				r.N = rng.Int63n(100)
				r.Info.SetModified()
			}
		}

		// Deterministic twin mutation: capture the rng decisions by
		// mutating twice with the same sub-seed.
		subSeed := rng.Int63()
		d1, d2 := ckpt.NewDomain(), ckpt.NewDomain()
		r1, r2 := build(d1, lenA, lenB), build(d2, lenA, lenB)
		drain(t, r1)
		drain(t, r2)
		rng = rand.New(rand.NewSource(subSeed))
		mutate(r1)
		rng = rand.New(rand.NewSource(subSeed))
		mutate(r2)

		want, _ := genericBody(t, r1, ckpt.Incremental)
		p, err := spec.Compile(cat, "Root", pat, spec.WithVerify())
		if err != nil {
			return false
		}
		got, _, err := planBody(t, p, r2)
		if err != nil {
			return false
		}
		return bytes.Equal(want, got)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}
