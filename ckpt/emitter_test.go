package ckpt_test

import (
	"errors"
	"testing"

	"ickpt/ckpt"
	"ickpt/wire"
)

func TestModeString(t *testing.T) {
	if ckpt.Full.String() != "full" || ckpt.Incremental.String() != "incremental" {
		t.Errorf("mode strings: %q %q", ckpt.Full, ckpt.Incremental)
	}
	if ckpt.Mode(0).String() != "invalid" || ckpt.Mode(9).String() != "invalid" {
		t.Error("invalid modes must render as invalid")
	}
}

func TestEmitterDirectUse(t *testing.T) {
	// Specialized code drives the emitter directly; its output must be a
	// valid body indistinguishable from the generic writer's.
	d := ckpt.NewDomain()
	p := newPoint(d, 4, 5, "direct")

	w := ckpt.NewWriter()
	w.Start(ckpt.Incremental)
	em := w.Emitter()
	em.Visit()
	if !em.EmitIfModified(p) {
		t.Fatal("fresh object not emitted")
	}
	body, stats, err := w.Finish()
	if err != nil {
		t.Fatal(err)
	}
	if stats.Recorded != 1 || stats.Visited != 1 {
		t.Errorf("stats = %+v", stats)
	}
	if p.info.Modified() {
		t.Error("EmitIfModified did not reset the flag")
	}
	info, err := ckpt.InspectBody(body, func(id uint64, tt ckpt.TypeID, payload []byte) error {
		if id != p.info.ID() || tt != typePoint {
			t.Errorf("record = (%d, %v)", id, tt)
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if info.Records != 1 {
		t.Errorf("records = %d", info.Records)
	}

	// Skip path.
	w.Start(ckpt.Incremental)
	em = w.Emitter()
	em.Visit()
	if em.EmitIfModified(p) {
		t.Error("clean object emitted")
	}
	_, stats, err = w.Finish()
	if err != nil {
		t.Fatal(err)
	}
	if stats.Skipped != 1 {
		t.Errorf("skipped = %d, want 1", stats.Skipped)
	}
}

func TestEmitterBeginEnd(t *testing.T) {
	d := ckpt.NewDomain()
	p := newPoint(d, 1, 2, "x")
	w := ckpt.NewWriter()
	w.Start(ckpt.Full)
	em := w.Emitter()
	enc := em.Begin(&p.info, typePoint)
	enc.Varint(123)
	em.End()
	body, _, err := w.Finish()
	if err != nil {
		t.Fatal(err)
	}
	var payload []byte
	if _, err := ckpt.InspectBody(body, func(_ uint64, _ ckpt.TypeID, pl []byte) error {
		payload = append([]byte(nil), pl...)
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	dec := wire.NewDecoder(payload)
	if got := dec.Varint(); got != 123 || dec.Len() != 0 {
		t.Errorf("payload = %d (rest %d)", got, dec.Len())
	}
}

func TestInspectBodyErrors(t *testing.T) {
	if _, err := ckpt.InspectBody(nil, nil); err == nil {
		t.Error("empty body accepted")
	}
	// Bad version.
	if _, err := ckpt.InspectBody([]byte{9, 1, 0}, nil); !errors.Is(err, ckpt.ErrBadBody) {
		t.Errorf("bad version = %v", err)
	}
	// Bad mode.
	if _, err := ckpt.InspectBody([]byte{1, 7, 0}, nil); !errors.Is(err, ckpt.ErrBadBody) {
		t.Errorf("bad mode = %v", err)
	}
	// Record with length pointing past the end.
	body := []byte{1, 1, 0 /* header */, 1 /* id */, 1 /* type */, 200 /* len */}
	if _, err := ckpt.InspectBody(body, nil); err == nil {
		t.Error("overlong record accepted")
	}
}

func TestInspectBodyCallbackError(t *testing.T) {
	d := ckpt.NewDomain()
	p := newPoint(d, 1, 2, "x")
	w := ckpt.NewWriter()
	w.Start(ckpt.Full)
	if err := w.Checkpoint(p); err != nil {
		t.Fatal(err)
	}
	body, _, err := w.Finish()
	if err != nil {
		t.Fatal(err)
	}
	boom := errors.New("boom")
	if _, err := ckpt.InspectBody(body, func(uint64, ckpt.TypeID, []byte) error {
		return boom
	}); !errors.Is(err, boom) {
		t.Errorf("callback error = %v, want boom", err)
	}
}

func TestMultipleRootsOneBody(t *testing.T) {
	d := ckpt.NewDomain()
	roots := []*box{buildChain(d, 2), buildChain(d, 3), buildChain(d, 1)}
	w := ckpt.NewWriter()
	w.Start(ckpt.Full)
	for _, r := range roots {
		if err := w.Checkpoint(r); err != nil {
			t.Fatal(err)
		}
	}
	body, stats, err := w.Finish()
	if err != nil {
		t.Fatal(err)
	}
	want := 3 + 2 + 3 + 1 // boxes + points
	if stats.Recorded != want {
		t.Errorf("recorded = %d, want %d", stats.Recorded, want)
	}

	rb := ckpt.NewRebuilder(testRegistry(t))
	if err := rb.Apply(append([]byte(nil), body...)); err != nil {
		t.Fatal(err)
	}
	objs, err := rb.Build(nil)
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range roots {
		got, ok := objs[r.info.ID()].(*box)
		if !ok {
			t.Fatalf("root %d missing", r.info.ID())
		}
		requireChainEqual(t, r, got)
	}
}

func TestRegistryConflicts(t *testing.T) {
	reg := ckpt.NewRegistry()
	if _, err := reg.Register("a", func(id uint64) ckpt.Restorable { return nil }); err != nil {
		t.Fatal(err)
	}
	if _, err := reg.Register("a", func(id uint64) ckpt.Restorable { return nil }); !errors.Is(err, ckpt.ErrTypeConflict) {
		t.Errorf("duplicate name = %v", err)
	}
	if got := reg.Name(ckpt.TypeIDOf("a")); got != "a" {
		t.Errorf("Name = %q", got)
	}
	if got := reg.Name(ckpt.TypeIDOf("zzz")); got != "" {
		t.Errorf("unknown Name = %q", got)
	}
}

func TestFactoryIDMismatchDetected(t *testing.T) {
	d := ckpt.NewDomain()
	p := newPoint(d, 1, 1, "x")
	w := ckpt.NewWriter()
	w.Start(ckpt.Full)
	if err := w.Checkpoint(p); err != nil {
		t.Fatal(err)
	}
	body, _, err := w.Finish()
	if err != nil {
		t.Fatal(err)
	}

	reg := ckpt.NewRegistry()
	reg.MustRegister("ckpttest.point", func(id uint64) ckpt.Restorable {
		return &point{info: ckpt.RestoredInfo(id + 1)} // wrong id
	})
	rb := ckpt.NewRebuilder(reg)
	if err := rb.Apply(append([]byte(nil), body...)); err != nil {
		t.Fatal(err)
	}
	if _, err := rb.Build(nil); !errors.Is(err, ckpt.ErrTypeConflict) {
		t.Errorf("Build with broken factory = %v, want ErrTypeConflict", err)
	}
}
