package ckpt

import (
	"fmt"

	"ickpt/wire"
)

// Writer is the generic checkpoint driver: the paper's Checkpoint class. It
// traverses checkpointable structures through the Checkpointable interface
// (virtual dispatch), testing the modified flag of each object in
// Incremental mode.
//
// Usage:
//
//	w := ckpt.NewWriter()
//	w.Start(ckpt.Incremental)
//	for _, root := range roots {
//		if err := w.Checkpoint(root); err != nil { ... }
//	}
//	body, stats, err := w.Finish()
//
// The writer is reusable: Start begins a new body and bumps the epoch.
// Writer is not safe for concurrent use.
type Writer struct {
	emitter Emitter
	enc     *wire.Encoder
	mode    Mode
	epoch   uint64
	started bool

	// visitErr is the first error any Checkpoint call returned for the body
	// in progress. Finish refuses to hand out the half-built body once it is
	// set: a truncated body would rebuild into a corrupted graph.
	visitErr error

	// session, when set, receives each epoch's clear-set on Finish and is
	// the commit/abort authority for it. Without a session the writer still
	// re-marks cleared flags itself when an epoch fails (see Finish), but
	// cannot protect bodies lost after a successful Finish.
	session *Session

	// shadow, when set, enables sub-object delta records: the emitter diffs
	// large payloads against the cache and bodies carry per-record kinds
	// (body version 2). Staged shadow updates resolve with the epoch —
	// through the session when one is attached, immediately otherwise.
	shadow *ShadowCache

	// collect, when non-nil, switches visit into traversal-only mode:
	// reachable objects are indexed by id and nothing is emitted or cleared.
	// Used by IndexRoots (and through it by Tracker.Watch).
	collect map[uint64]Checkpointable

	cycleCheck bool
	onStack    map[uint64]struct{}
}

// WriterOption configures a Writer.
type WriterOption interface {
	apply(*Writer)
}

type writerOptionFunc func(*Writer)

func (f writerOptionFunc) apply(w *Writer) { f(w) }

// WithCycleCheck makes the writer track the traversal stack and return
// ErrCycle if a checkpointable object is reached from within its own
// traversal. The paper assumes acyclic structures; this option trades a map
// operation per object for a guarantee.
func WithCycleCheck() WriterOption {
	return writerOptionFunc(func(w *Writer) { w.cycleCheck = true })
}

// WithSession attaches a commit/abort session: every epoch's clear-set is
// handed to s when the epoch finishes (pending until s.Commit or s.Abort),
// and an epoch that fails — a fold error, or a Start that discards a body
// in progress — is aborted through s immediately. See Session.
func WithSession(s *Session) WriterOption {
	return writerOptionFunc(func(w *Writer) { w.session = s })
}

// WithEncoder makes the writer encode into enc instead of an encoder of its
// own — typically one drawn from the wire package's pool (wire.GetEncoder),
// so short-lived writers reuse grown buffers instead of re-growing fresh
// ones. The caller keeps ownership: bodies returned by Finish alias enc, and
// returning enc to the pool invalidates them.
func WithEncoder(enc *wire.Encoder) WriterOption {
	return writerOptionFunc(func(w *Writer) { w.enc = enc })
}

// WithScratchEncode makes the writer's emitter encode each record payload
// into a scratch buffer and copy it behind a computed length prefix — the
// pre-zero-copy baseline — instead of writing payloads directly into the
// body with a reserved/patched prefix. Bodies are byte-identical either way;
// the option exists so benchmarks can measure the scratch-copy tax
// (cmd/ckptbench -experiment interp).
func WithScratchEncode() WriterOption {
	return writerOptionFunc(func(w *Writer) { w.emitter.SetScratchEncode(true) })
}

// WithDeltaEncoding enables sub-object delta records: each payload larger
// than minSize bytes is remembered in a shadow cache across epochs, and an
// object whose payload changed a little is shipped as a copy/patch delta
// against its previous payload (wire.KindDelta) instead of in full. Bodies
// gain a per-record kind byte (body version 2); Rebuilder and stablelog
// replay materialize deltas transparently. Payloads that churn heavily fall
// back to full records adaptively. minSize <= 0 shadows every payload.
func WithDeltaEncoding(minSize int) WriterOption {
	return writerOptionFunc(func(w *Writer) { w.shadow = NewShadowCache(minSize) })
}

// WithShadowCache is WithDeltaEncoding with an existing cache: drivers that
// rotate several writers over one logical stream (parfold's workers, a
// dirty fold and its Full-mode fallback writer) share the shadow state. A
// nil cache leaves delta encoding off.
func WithShadowCache(c *ShadowCache) WriterOption {
	return writerOptionFunc(func(w *Writer) { w.shadow = c })
}

// NewWriter returns a Writer.
func NewWriter(opts ...WriterOption) *Writer {
	w := &Writer{}
	for _, o := range opts {
		o.apply(w)
	}
	if w.shadow != nil {
		w.emitter.SetShadow(w.shadow)
	}
	if w.enc == nil {
		w.enc = wire.NewEncoder(0)
	}
	if w.cycleCheck {
		w.onStack = make(map[uint64]struct{})
	}
	return w
}

// Start begins a new checkpoint body in the given mode. Any body in progress
// is discarded — and its epoch aborted: the modified flags the discarded
// body cleared are re-marked (through the session when one is attached), so
// the abandoned state is recaptured rather than silently lost. The writer's
// epoch is incremented; the first checkpoint has epoch 1.
func (w *Writer) Start(mode Mode) {
	w.abandon()
	w.epoch++
	w.enc.Reset()
	w.emitter.Reset(w.enc, mode, w.epoch)
	w.mode = mode
	w.started = true
	w.visitErr = nil
	clear(w.onStack)
}

// StartAt is Start with an explicit epoch: the body header carries epoch and
// the writer's own counter is pinned to it, so a later Start continues from
// epoch+1. It exists for drivers that own the epoch sequence themselves — the
// parallel folder's single-worker inline path encodes a complete body
// (header included) with the folder's epoch, byte-identical to the
// multi-worker merge of the same items.
func (w *Writer) StartAt(mode Mode, epoch uint64) {
	w.abandon()
	w.epoch = epoch
	w.enc.Reset()
	w.emitter.Reset(w.enc, mode, epoch)
	w.mode = mode
	w.started = true
	w.visitErr = nil
	clear(w.onStack)
}

// StartShard begins a headerless shard body in the given mode: the writer
// frames records exactly as Start does but emits no body header, and its
// epoch is pinned to the merged checkpoint's epoch instead of advancing. A
// parallel fold (package parfold) gives each worker a shard writer, then
// concatenates the shard bodies in canonical id order after a single
// AppendBodyHeader, reconstituting a body byte-identical to a sequential
// fold over the same roots in the same order.
func (w *Writer) StartShard(mode Mode, epoch uint64) {
	w.abandon()
	w.epoch = epoch
	w.enc.Reset()
	w.emitter.ResetShard(w.enc)
	w.emitter.mode = mode // ResetShard writes no header, so set the mode for delta policy
	w.mode = mode
	w.started = true
	w.visitErr = nil
	clear(w.onStack)
}

// abandon aborts a body in progress that was never finished. The flags its
// records cleared are lost updates unless re-marked; a session attached to
// the writer accounts the abort, otherwise the writer re-marks directly.
func (w *Writer) abandon() {
	if !w.started {
		return
	}
	w.started = false
	clears := w.emitter.TakeClears()
	if w.shadow != nil {
		// The staged payload copies were never published; recycle them.
		w.shadow.Discard(w.emitter.TakeShadowStages())
	}
	if w.session != nil {
		// Observe+Abort even when no flag was cleared: the session's abort
		// count tracks failed epochs, not just non-empty clear-sets.
		w.session.Observe(w.epoch, w.mode, clears)
		w.session.Abort(w.epoch)
	} else {
		Remark(clears)
		putClears(clears)
	}
}

// SwapEncoder points the writer at enc for the bodies that follow. It is the
// zero-copy handoff hook: a caller that sinks bodies into
// stablelog.AsyncWriter can swap in a log-owned buffer
// (AsyncWriter.Reserve) before each Start, let Record write straight into
// it, and submit it without a copy (AsyncWriter.Submit). Must not be called
// while a body is in progress; the previous encoder — and any body aliasing
// it — stays owned by whoever supplied it.
func (w *Writer) SwapEncoder(enc *wire.Encoder) {
	w.enc = enc
}

// BodyLen returns the number of bytes written to the body in progress.
// Together with StartShard it lets a parallel fold slice the per-root chunks
// out of a worker's shard body.
func (w *Writer) BodyLen() int { return w.enc.Len() }

// Checkpoint traverses the structure rooted at o, recording objects
// according to the writer's mode. It corresponds to the paper's
// Checkpoint.checkpoint method: in Incremental mode, record o if its
// modified flag is set (clearing the flag), then fold over its children; in
// Full mode, record o unconditionally, then fold.
func (w *Writer) Checkpoint(o Checkpointable) error {
	if !w.started {
		return ErrNotStarted
	}
	err := w.visit(o)
	if err != nil && w.visitErr == nil {
		w.visitErr = err
	}
	return err
}

// CheckpointDirty encodes a tracker's dirty set instead of traversing: it
// drains t's mark-queue (Tracker.Take) and emits each dirty object, in
// canonical ascending-id order, through emit — ckpt.EmitObject for virtual
// dispatch, or a specialized engine's per-object routine. The body produced
// is an ordinary incremental body; its cost is O(dirty), not O(live graph).
//
// The writer must be started in Incremental mode (a dirty set is
// meaningless for a Full body: ErrDirtyMode). Callers are expected to ask
// the tracker for the mode first — mode := t.NextMode(ckpt.Incremental) —
// and fall back to a traversal fold plus Tracker.Watch when the tracker has
// degraded.
//
// If emit fails, the un-emitted remainder of the dirty set is re-enqueued
// (Tracker.Requeue) and the error recorded, so Finish aborts the epoch and
// the combination of re-enqueue and abort re-marking recaptures the entire
// dirty set.
//
// A nil emit selects the virtual-dispatch path (EmitObject's behaviour)
// without an indirect call per object — the mirror of the traversal fold,
// which also records through Emitter.EmitIfModified directly.
func (w *Writer) CheckpointDirty(t *Tracker, emit EmitOne) error {
	if !w.started {
		return ErrNotStarted
	}
	if w.mode != Incremental {
		return ErrDirtyMode
	}
	if emit == nil {
		// Fused drain: record hits straight off the tracker's dense scan,
		// skipping the taken-slice materialization and its second pass over
		// the object metadata. A false return means marked objects escaped
		// the scan; Take recovers exactly those (the recorded ones are clean
		// now), so the epoch still captures the full dirty set.
		if t.scanReady() && t.drainScan(&w.emitter) {
			return nil
		}
		for _, o := range t.Take() {
			w.emitter.Visit()
			w.emitter.EmitIfModified(o)
		}
		return nil
	}
	objs := t.Take()
	for i, o := range objs {
		w.emitter.Visit()
		if err := emit(&w.emitter, o); err != nil {
			t.Requeue(objs[i:])
			if w.visitErr == nil {
				w.visitErr = err
			}
			return err
		}
	}
	return nil
}

func (w *Writer) visit(o Checkpointable) error {
	if w.collect != nil {
		info := o.CheckpointInfo()
		if _, seen := w.collect[info.ID()]; seen {
			return nil
		}
		w.collect[info.ID()] = o
		return o.Fold(w)
	}
	w.emitter.Visit()
	if w.cycleCheck {
		id := o.CheckpointInfo().ID()
		if _, ok := w.onStack[id]; ok {
			return fmt.Errorf("%w: object id %d revisited", ErrCycle, id)
		}
		w.onStack[id] = struct{}{}
		defer delete(w.onStack, id)
	}
	if w.mode == Full {
		w.emitter.Emit(o)
	} else {
		w.emitter.EmitIfModified(o)
	}
	return o.Fold(w)
}

// Finish completes the body and returns it along with traversal statistics.
// The returned slice aliases the writer's buffer and is invalidated by the
// next Start; copy it if it must outlive the writer's reuse.
//
// If any Checkpoint call failed since Start, Finish refuses the half-built
// body: it returns a nil body and the first visit error, and aborts the
// epoch — re-marking every modified flag the partial encode cleared
// (through the session when one is attached) so the next incremental
// checkpoint recaptures the state the discarded body carried.
//
// On success with a session attached, the epoch's clear-set is handed to
// the session and stays pending until Session.Commit or Session.Abort.
func (w *Writer) Finish() ([]byte, Stats, error) {
	if !w.started {
		return nil, Stats{}, ErrNotStarted
	}
	w.started = false
	clears := w.emitter.TakeClears()
	if w.visitErr != nil {
		err := w.visitErr
		w.visitErr = nil
		if w.shadow != nil {
			w.shadow.Discard(w.emitter.TakeShadowStages())
		}
		if w.session != nil {
			w.session.Observe(w.epoch, w.mode, clears)
			w.session.Abort(w.epoch)
		} else {
			Remark(clears)
			putClears(clears)
		}
		return nil, w.emitter.Stats(), fmt.Errorf("ckpt: epoch %d aborted, body discarded: %w", w.epoch, err)
	}
	if w.shadow != nil {
		// Publish the epoch's shadow updates. A driver that already drained
		// the emitter (parfold takes the stages before worker Finish) leaves
		// nothing here, and owns staging itself.
		if stages := w.emitter.TakeShadowStages(); w.session != nil {
			w.shadow.Stage(w.epoch, stages)
		} else if len(stages) > 0 {
			// No commit authority: the body is handed to the caller as
			// durable, mirroring how the sessionless path drops clear-sets.
			w.shadow.Stage(w.epoch, stages)
			w.shadow.CommitEpoch(w.epoch, w.mode)
		}
	}
	if w.session != nil {
		w.session.Observe(w.epoch, w.mode, clears)
		if w.shadow != nil {
			w.session.AttachShadow(w.epoch, w.shadow)
		}
	} else {
		putClears(clears)
	}
	return w.enc.Bytes(), w.emitter.Stats(), nil
}

// Epoch returns the epoch of the checkpoint in progress (or the last
// completed one).
func (w *Writer) Epoch() uint64 { return w.epoch }

// Mode returns the mode of the checkpoint in progress (or the last completed
// one).
func (w *Writer) Mode() Mode { return w.mode }

// Shadow returns the writer's delta shadow cache, nil when delta encoding is
// off — drivers hand it to other writers of the same stream
// (WithShadowCache, parfold.WithShadowCache) and tests assert the
// commit/abort contract through it.
func (w *Writer) Shadow() *ShadowCache { return w.shadow }

// Emitter exposes the writer's low-level sink. It is used by compiled
// specialization plans and generated specialized functions so that they
// write into the same body with the same framing as the generic driver. The
// emitter is only valid between Start and Finish.
func (w *Writer) Emitter() *Emitter { return &w.emitter }
