package ckpt_test

import (
	"testing"

	"ickpt/ckpt"
	"ickpt/internal/difftest"
	"ickpt/internal/synth"
)

// seedCorpus feeds every checkpoint body from the standard difftest traces
// into the fuzzer, so mutation starts from structurally valid bodies across
// all four engines and three workloads.
func seedCorpus(f *testing.F) [][]byte {
	bodies, err := difftest.SeedBodies()
	if err != nil {
		f.Fatalf("seed corpus: %v", err)
	}
	for _, b := range bodies {
		f.Add(b)
	}
	f.Add([]byte{})
	f.Add([]byte{1})
	return bodies
}

// FuzzInspectBody drives the body decoder over arbitrary bytes: it must
// return an error or a consistent BodyInfo, never panic or over-read.
func FuzzInspectBody(f *testing.F) {
	seedCorpus(f)
	f.Fuzz(func(t *testing.T, body []byte) {
		records := 0
		info, err := ckpt.InspectBody(body, func(id uint64, tid ckpt.TypeID, payload []byte) error {
			records++
			return nil
		})
		if err != nil {
			return
		}
		if info.Records != records {
			t.Fatalf("info.Records = %d, callback saw %d", info.Records, records)
		}
	})
}

// FuzzRebuilderApply applies a known-good full base body and then an
// arbitrary body: Apply must either reject the body (leaving state intact,
// so Build still succeeds) or accept it with Build never panicking.
func FuzzRebuilderApply(f *testing.F) {
	bodies := seedCorpus(f)
	base := bodies[0] // base full checkpoint of the first synth trace
	f.Fuzz(func(t *testing.T, body []byte) {
		rb := ckpt.NewRebuilder(synth.Registry())
		if err := rb.Apply(base); err != nil {
			t.Fatalf("base body rejected: %v", err)
		}
		if err := rb.Apply(body); err != nil {
			// Apply is documented atomic: the base state must survive.
			if _, err := rb.Build(ckpt.NewDomain()); err != nil {
				t.Fatalf("failed Apply corrupted rebuilder state: %v", err)
			}
			return
		}
		// Accepted bodies may still reference unknown types or dangling
		// ids; Build may error but must not panic.
		_, _ = rb.Build(ckpt.NewDomain())
	})
}
