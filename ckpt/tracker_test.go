package ckpt_test

import (
	"errors"
	"fmt"
	"testing"

	"ickpt/ckpt"
)

// trackedFixture builds n points as separate roots (ascending ids), drains
// the construction-time modified flags with a full checkpoint, and watches
// the population with a fresh tracker.
func trackedFixture(t *testing.T, n int) (*ckpt.Domain, []*point, []ckpt.Checkpointable, *ckpt.Tracker) {
	t.Helper()
	d := ckpt.NewDomain()
	pts := make([]*point, n)
	roots := make([]ckpt.Checkpointable, n)
	for i := range pts {
		pts[i] = newPoint(d, int64(i), int64(i), "t")
		roots[i] = pts[i]
	}
	drainFull(t, roots)
	tr := ckpt.NewTracker()
	d.AttachTracker(tr)
	if err := tr.Watch(roots...); err != nil {
		t.Fatal(err)
	}
	return d, pts, roots, tr
}

// drainFull takes a throwaway full checkpoint to clear every modified flag.
func drainFull(t *testing.T, roots []ckpt.Checkpointable) {
	t.Helper()
	w := ckpt.NewWriter()
	w.Start(ckpt.Full)
	for _, r := range roots {
		if err := w.Checkpoint(r); err != nil {
			t.Fatal(err)
		}
	}
	if _, _, err := w.Finish(); err != nil {
		t.Fatal(err)
	}
}

// dirtyBody takes one dirty incremental checkpoint of the tracker's queue.
func dirtyBody(t *testing.T, tr *ckpt.Tracker, s *ckpt.Session) ([]byte, uint64) {
	t.Helper()
	var opts []ckpt.WriterOption
	if s != nil {
		opts = append(opts, ckpt.WithSession(s))
	}
	w := ckpt.NewWriter(opts...)
	w.Start(ckpt.Incremental)
	if err := w.CheckpointDirty(tr, ckpt.EmitObject); err != nil {
		t.Fatal(err)
	}
	body, _, err := w.Finish()
	if err != nil {
		t.Fatal(err)
	}
	return body, w.Epoch()
}

// TestDirtyFoldMatchesTraversal pins the core O(dirty) contract: for roots
// whose creation order is ascending-id order, the dirty fold's body is
// byte-identical to the generic incremental traversal over the same
// modification, and only the dirty objects are visited.
func TestDirtyFoldMatchesTraversal(t *testing.T) {
	// Two identically-built domains so ids (and bodies) line up.
	_, ptsA, _, tr := trackedFixture(t, 8)
	dB := ckpt.NewDomain()
	ptsB := make([]*point, 8)
	rootsB := make([]ckpt.Checkpointable, 8)
	for i := range ptsB {
		ptsB[i] = newPoint(dB, int64(i), int64(i), "t")
		rootsB[i] = ptsB[i]
	}
	drainFull(t, rootsB)

	for _, i := range []int{1, 4, 6} {
		ptsA[i].x += 10
		ptsA[i].info.Mark()
		ptsB[i].x += 10
		ptsB[i].info.SetModified()
	}
	if got := tr.Dirty(); got != 3 {
		t.Fatalf("Dirty() = %d, want 3", got)
	}

	w := ckpt.NewWriter()
	w.Start(ckpt.Incremental)
	if err := w.CheckpointDirty(tr, ckpt.EmitObject); err != nil {
		t.Fatal(err)
	}
	dirty, dstats, err := w.Finish()
	if err != nil {
		t.Fatal(err)
	}

	wB := ckpt.NewWriter()
	wB.Start(ckpt.Incremental)
	for _, r := range rootsB {
		if err := wB.Checkpoint(r); err != nil {
			t.Fatal(err)
		}
	}
	trav, tstats, err := wB.Finish()
	if err != nil {
		t.Fatal(err)
	}

	if string(dirty) != string(trav) {
		t.Fatalf("dirty body (%d bytes) != traversal body (%d bytes)", len(dirty), len(trav))
	}
	if dstats.Visited != 3 {
		t.Fatalf("dirty fold visited %d objects, want 3", dstats.Visited)
	}
	if tstats.Visited != 8 {
		t.Fatalf("traversal visited %d objects, want 8", tstats.Visited)
	}
	for i, p := range ptsA {
		if p.info.Modified() {
			t.Fatalf("point %d still modified after dirty fold", i)
		}
	}
	if tr.Dirty() != 0 {
		t.Fatal("queue not drained by Take")
	}
}

// TestMarkIdempotent: marking the same object repeatedly enqueues it once.
func TestMarkIdempotent(t *testing.T) {
	_, pts, _, tr := trackedFixture(t, 3)
	for i := 0; i < 5; i++ {
		pts[1].info.Mark()
	}
	if got := tr.Dirty(); got != 1 {
		t.Fatalf("Dirty() = %d after repeated Mark, want 1", got)
	}
	body, _ := dirtyBody(t, tr, nil)
	if len(body) == 0 {
		t.Fatal("empty body")
	}
	// Re-marking after the drain enqueues again: the queued bit was cleared.
	pts[1].info.Mark()
	if got := tr.Dirty(); got != 1 {
		t.Fatalf("Dirty() = %d after post-drain Mark, want 1", got)
	}
}

// TestTakeDropsStaleEntries: an entry whose flag a traversal fold cleared in
// between Mark and Take is dropped, not re-encoded.
func TestTakeDropsStaleEntries(t *testing.T) {
	_, pts, roots, tr := trackedFixture(t, 4)
	pts[0].info.Mark()
	pts[2].info.Mark()
	drainFull(t, roots) // clears both flags; queue entries now stale
	pts[2].info.Mark()  // queued bit still set from before: no duplicate
	w := ckpt.NewWriter()
	w.Start(ckpt.Incremental)
	if err := w.CheckpointDirty(tr, ckpt.EmitObject); err != nil {
		t.Fatal(err)
	}
	_, stats, err := w.Finish()
	if err != nil {
		t.Fatal(err)
	}
	if stats.Visited != 1 {
		t.Fatalf("visited %d, want 1 (only the re-marked point)", stats.Visited)
	}
	if tr.Degraded() {
		t.Fatal("stale entries must not degrade the tracker")
	}
}

// TestAbortReenqueues: Session.Abort re-marks the epoch's clear-set through
// Mark, so the aborted objects land back in the mark-queue and the retake
// rebuilds a byte-identical body.
func TestAbortReenqueues(t *testing.T) {
	_, pts, _, tr := trackedFixture(t, 6)
	s := ckpt.NewSession()
	for _, i := range []int{0, 3, 5} {
		pts[i].x++
		pts[i].info.Mark()
	}
	first, epoch := dirtyBody(t, tr, s)
	if tr.Dirty() != 0 {
		t.Fatal("queue should be empty after the fold")
	}
	if got := s.Abort(epoch); got != 3 {
		t.Fatalf("Abort re-marked %d, want 3", got)
	}
	if got := tr.Dirty(); got != 3 {
		t.Fatalf("Dirty() = %d after abort, want 3 (re-enqueued)", got)
	}
	retake, _ := dirtyBody(t, tr, s)
	if withoutEpoch(t, first) != withoutEpoch(t, retake) {
		t.Fatal("retake after abort is not byte-identical (modulo epoch)")
	}
}

// withoutEpoch renders a body's record stream (ids, types, payloads) without
// the epoch header, so bodies from different epochs can be compared
// record-for-record.
func withoutEpoch(t *testing.T, body []byte) string {
	t.Helper()
	var b []byte
	_, err := ckpt.InspectBody(body, func(id uint64, typ ckpt.TypeID, payload []byte) error {
		b = append(b, fmt.Sprintf("%d/%d:%x;", id, typ, payload)...)
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	return string(b)
}

// TestMarkDuringFold: an object marked while the dirty fold is draining the
// previous take is queued for the NEXT take, never lost and never folded
// into the in-flight body.
func TestMarkDuringFold(t *testing.T) {
	_, pts, _, tr := trackedFixture(t, 4)
	pts[0].x++
	pts[0].info.Mark()
	marked := false
	emit := func(em *ckpt.Emitter, o ckpt.Checkpointable) error {
		if !marked {
			marked = true
			pts[3].x++
			pts[3].info.Mark()
		}
		return ckpt.EmitObject(em, o)
	}
	w := ckpt.NewWriter()
	w.Start(ckpt.Incremental)
	if err := w.CheckpointDirty(tr, emit); err != nil {
		t.Fatal(err)
	}
	_, stats, err := w.Finish()
	if err != nil {
		t.Fatal(err)
	}
	if stats.Visited != 1 {
		t.Fatalf("in-flight fold visited %d, want 1", stats.Visited)
	}
	if got := tr.Dirty(); got != 1 {
		t.Fatalf("Dirty() = %d, want 1 (the mid-fold mark)", got)
	}
	_, nstats, _ := takeStats(t, tr)
	if nstats.Visited != 1 {
		t.Fatalf("next fold visited %d, want 1", nstats.Visited)
	}
	if pts[3].info.Modified() {
		t.Fatal("mid-fold mark not folded by the next take")
	}
}

func takeStats(t *testing.T, tr *ckpt.Tracker) ([]byte, ckpt.Stats, error) {
	t.Helper()
	w := ckpt.NewWriter()
	w.Start(ckpt.Incremental)
	if err := w.CheckpointDirty(tr, ckpt.EmitObject); err != nil {
		t.Fatal(err)
	}
	return w.Finish()
}

// TestFreshAllocationDegrades: an object allocated under an attached domain
// after Watch is invisible to the view; the tracker degrades rather than
// deliver an incomplete dirty set, NextMode forces Full, and a Full
// traversal followed by Watch restores O(dirty) operation.
func TestFreshAllocationDegrades(t *testing.T) {
	d, _, roots, tr := trackedFixture(t, 3)
	p := newPoint(d, 99, 99, "fresh") // modified at birth, not in the view
	roots = append(roots, p)
	if tr.Degraded() {
		t.Fatal("allocation alone must not degrade before Take")
	}
	tr.Take()
	if !tr.Degraded() {
		t.Fatal("Take with unsettled allocation must degrade")
	}
	if got := tr.NextMode(ckpt.Incremental); got != ckpt.Full {
		t.Fatalf("NextMode = %v while degraded, want Full", got)
	}
	if got := tr.NextMode(ckpt.Full); got != ckpt.Full {
		t.Fatalf("NextMode(Full) = %v, want Full", got)
	}
	// Recovery: Full traversal captures everything, Watch rebuilds the view.
	drainFull(t, roots)
	if err := tr.Watch(roots...); err != nil {
		t.Fatal(err)
	}
	if tr.Degraded() {
		t.Fatal("Watch must clear degradation")
	}
	if tr.Len() != 4 {
		t.Fatalf("view has %d objects after Watch, want 4", tr.Len())
	}
	if got := tr.NextMode(ckpt.Incremental); got != ckpt.Incremental {
		t.Fatalf("NextMode = %v after recovery, want Incremental", got)
	}
}

// TestTrackSettlesFreshDebt: Track-ing a freshly allocated object registers
// it and keeps the tracker healthy, so allocate-then-Track never costs a
// Full checkpoint.
func TestTrackSettlesFreshDebt(t *testing.T) {
	d, _, _, tr := trackedFixture(t, 2)
	p := newPoint(d, 7, 7, "new")
	tr.Track(p)
	objs := tr.Take()
	if tr.Degraded() {
		t.Fatal("tracked allocation must not degrade")
	}
	if len(objs) != 1 || objs[0] != ckpt.Checkpointable(p) {
		t.Fatalf("Take = %d objects, want the tracked point", len(objs))
	}
}

// TestIdentityMismatchDegrades: if the object registered under an id is no
// longer the one whose Info was marked (a by-value copy took its place), the
// tracker degrades instead of encoding the wrong object.
func TestIdentityMismatchDegrades(t *testing.T) {
	_, pts, _, tr := trackedFixture(t, 2)
	pts[1].info.Mark()
	clone := *pts[1] // same id, different Info address
	tr.Track(&clone)
	objs := tr.Take()
	if !tr.Degraded() {
		t.Fatal("identity mismatch must degrade")
	}
	if len(objs) != 0 {
		t.Fatalf("Take returned %d objects for a mismatched entry, want 0", len(objs))
	}
}

// TestWatchReenqueuesModified: Watch over a graph with already-dirty objects
// queues them, so no pre-Watch mutation is lost.
func TestWatchReenqueuesModified(t *testing.T) {
	d := ckpt.NewDomain()
	var roots []ckpt.Checkpointable
	pts := make([]*point, 5)
	for i := range pts {
		pts[i] = newPoint(d, int64(i), 0, "w")
		roots = append(roots, pts[i])
	}
	drainFull(t, roots)
	pts[2].info.SetModified() // dirtied before any tracker exists
	tr := ckpt.NewTracker()
	if err := tr.Watch(roots...); err != nil {
		t.Fatal(err)
	}
	if got := tr.Dirty(); got != 1 {
		t.Fatalf("Dirty() = %d after Watch, want 1", got)
	}
	objs := tr.Take()
	if len(objs) != 1 || objs[0] != ckpt.Checkpointable(pts[2]) {
		t.Fatalf("Take = %v, want the pre-dirty point", objs)
	}
}

// TestDirtyFoldFailureRequeues: when an EmitOne fails mid-drain, the
// un-emitted tail is re-queued by CheckpointDirty and the emitted prefix is
// recovered by the session abort — together the retake covers the full set.
func TestDirtyFoldFailureRequeues(t *testing.T) {
	_, pts, _, tr := trackedFixture(t, 5)
	s := ckpt.NewSession()
	for _, i := range []int{0, 1, 2, 3} {
		pts[i].x++
		pts[i].info.Mark()
	}
	boom := errors.New("boom")
	n := 0
	emit := func(em *ckpt.Emitter, o ckpt.Checkpointable) error {
		if n == 2 {
			return boom
		}
		n++
		return ckpt.EmitObject(em, o)
	}
	w := ckpt.NewWriter(ckpt.WithSession(s))
	w.Start(ckpt.Incremental)
	if err := w.CheckpointDirty(tr, emit); !errors.Is(err, boom) {
		t.Fatalf("CheckpointDirty = %v, want boom", err)
	}
	if body, _, err := w.Finish(); !errors.Is(err, boom) || body != nil {
		t.Fatalf("Finish = %d bytes, %v; want nil body and boom", len(body), err)
	}
	// Finish aborted the doomed epoch through the session (re-marking the 2
	// emitted objects); CheckpointDirty re-queued the un-emitted tail.
	if got := tr.Dirty(); got != 4 {
		t.Fatalf("Dirty() = %d after failed fold, want 4", got)
	}
	body, _ := dirtyBody(t, tr, s)
	if len(body) == 0 {
		t.Fatal("empty retake body")
	}
	for _, i := range []int{0, 1, 2, 3} {
		if pts[i].info.Modified() {
			t.Fatalf("point %d not folded by the retake", i)
		}
	}
}

// TestCheckpointDirtyModeErrors: the dirty path refuses un-started writers
// and non-Incremental modes.
func TestCheckpointDirtyModeErrors(t *testing.T) {
	_, _, _, tr := trackedFixture(t, 1)
	w := ckpt.NewWriter()
	if err := w.CheckpointDirty(tr, ckpt.EmitObject); !errors.Is(err, ckpt.ErrNotStarted) {
		t.Fatalf("unstarted CheckpointDirty = %v, want ErrNotStarted", err)
	}
	w.Start(ckpt.Full)
	if err := w.CheckpointDirty(tr, ckpt.EmitObject); !errors.Is(err, ckpt.ErrDirtyMode) {
		t.Fatalf("Full-mode CheckpointDirty = %v, want ErrDirtyMode", err)
	}
}

// TestTrackerAsSessionResolver: a tracker doubles as the session's
// InfoResolver, so abort-after-restart style re-marks resolve through the
// same view the dirty index maintains.
func TestTrackerAsSessionResolver(t *testing.T) {
	_, pts, _, tr := trackedFixture(t, 3)
	s := ckpt.NewSession(ckpt.WithInfoResolver(tr.Resolve))
	pts[1].info.Mark()
	_, epoch := dirtyBody(t, tr, s)
	if got := s.Abort(epoch); got != 1 {
		t.Fatalf("Abort re-marked %d, want 1", got)
	}
	if got := tr.Dirty(); got != 1 {
		t.Fatalf("Dirty() = %d, want 1", got)
	}
}

// TestSteadyStateDirtyFoldAllocsZero proves the zero-allocation claim: after
// warm-up, a full mutate → Start → CheckpointDirty → Finish → Commit epoch
// allocates nothing — the mark-queue backing array, the taken slice, the
// encoder buffer, and the session's clear-set slices are all reused.
func TestSteadyStateDirtyFoldAllocsZero(t *testing.T) {
	_, pts, _, tr := trackedFixture(t, 64)
	s := ckpt.NewSession()
	w := ckpt.NewWriter(ckpt.WithSession(s))
	epoch := func() {
		for _, i := range []int{3, 17, 40, 63} {
			pts[i].x++
			pts[i].info.Mark()
		}
		w.Start(ckpt.Incremental)
		if err := w.CheckpointDirty(tr, ckpt.EmitObject); err != nil {
			t.Fatal(err)
		}
		if _, _, err := w.Finish(); err != nil {
			t.Fatal(err)
		}
		if !s.Commit(w.Epoch()) {
			t.Fatal("epoch not pending at Commit")
		}
	}
	for i := 0; i < 3; i++ { // warm the pools and grow the backing arrays
		epoch()
	}
	if avg := testing.AllocsPerRun(50, epoch); avg != 0 {
		t.Fatalf("steady-state dirty epoch allocates %v per run, want 0", avg)
	}
}

// TestDirtyFoldNilEmitMatchesEmitObject: a nil emit selects the writer's
// direct virtual path (the fused dense drain when the dirty set is large
// enough, the sorted queue otherwise); either way the body must be
// byte-identical to the EmitObject path over the same marks.
func TestDirtyFoldNilEmitMatchesEmitObject(t *testing.T) {
	for _, tc := range []struct {
		name  string
		n     int
		marks []int
	}{
		// 3 entries over 8 objects clears the dense-scan threshold: the
		// nil-emit side takes the fused drain.
		{"scan", 8, []int{1, 4, 6}},
		// 2 entries over 64 objects stays under it: sorted-queue path.
		{"sort", 64, []int{5, 50}},
	} {
		t.Run(tc.name, func(t *testing.T) {
			_, ptsA, _, trA := trackedFixture(t, tc.n)
			_, ptsB, _, trB := trackedFixture(t, tc.n)
			for _, i := range tc.marks {
				ptsA[i].x += 3
				ptsA[i].info.Mark()
				ptsB[i].x += 3
				ptsB[i].info.Mark()
			}
			w := ckpt.NewWriter()
			w.Start(ckpt.Incremental)
			if err := w.CheckpointDirty(trA, nil); err != nil {
				t.Fatal(err)
			}
			nilBody, nstats, err := w.Finish()
			if err != nil {
				t.Fatal(err)
			}
			emitBody, _ := dirtyBody(t, trB, nil)
			if string(nilBody) != string(emitBody) {
				t.Fatalf("nil-emit body (%d bytes) != EmitObject body (%d bytes)", len(nilBody), len(emitBody))
			}
			if nstats.Visited != len(tc.marks) {
				t.Fatalf("nil-emit fold visited %d, want %d", nstats.Visited, len(tc.marks))
			}
			if trA.Degraded() {
				t.Fatal("nil-emit fold must not degrade")
			}
		})
	}
}

// TestNilEmitFoldRecoversUnadopted: the fused drain only trusts adopted
// objects, so one marked before registration (a fresh allocation Marked and
// then Tracked) escapes the dense scan. The live-entry count disagrees, the
// precise path records exactly the remainder, and the epoch still captures
// the full dirty set without degrading.
func TestNilEmitFoldRecoversUnadopted(t *testing.T) {
	d, pts, _, tr := trackedFixture(t, 8)
	pts[3].x++
	pts[3].info.Mark()
	late := newPoint(d, 9, 9, "late") // fresh: Mark enqueues before Track adopts
	late.info.Mark()
	tr.Track(late)
	w := ckpt.NewWriter()
	w.Start(ckpt.Incremental)
	if err := w.CheckpointDirty(tr, nil); err != nil {
		t.Fatal(err)
	}
	body, stats, err := w.Finish()
	if err != nil {
		t.Fatal(err)
	}
	if stats.Visited != 2 {
		t.Fatalf("fold visited %d, want 2", stats.Visited)
	}
	ids := make(map[uint64]bool)
	if _, err := ckpt.InspectBody(body, func(id uint64, _ ckpt.TypeID, _ []byte) error {
		ids[id] = true
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	if len(ids) != 2 || !ids[pts[3].info.ID()] || !ids[late.info.ID()] {
		t.Fatalf("body records ids %v, want the adopted and the late object", ids)
	}
	if tr.Degraded() {
		t.Fatal("recovered under-capture must not degrade")
	}
	if pts[3].info.Modified() || late.info.Modified() {
		t.Fatal("dirty objects not cleared by the fold")
	}
}

// TestTakeDedupsRetiredReMark: ResetModified retires a queue entry, and a
// later Mark re-enqueues the same Info, so the queue can hold an object
// twice. The sorted precise path emits it once and stays healthy.
func TestTakeDedupsRetiredReMark(t *testing.T) {
	_, pts, _, tr := trackedFixture(t, 64)
	pts[3].x++
	pts[3].info.Mark()
	pts[3].info.ResetModified() // retire the entry without a fold
	pts[40].x++
	pts[40].info.Mark()
	pts[3].x++
	pts[3].info.Mark() // re-enqueue: the queue now holds pts[3] twice
	_, stats, err := takeStats(t, tr)
	if err != nil {
		t.Fatal(err)
	}
	if stats.Visited != 2 {
		t.Fatalf("fold visited %d, want 2 (the duplicate entry must collapse)", stats.Visited)
	}
	if tr.Degraded() {
		t.Fatal("a retired-and-re-marked entry must not degrade")
	}
	if pts[3].info.Modified() || pts[40].info.Modified() {
		t.Fatal("marked objects not folded")
	}
}

// TestSteadyStateNilEmitDirtyFoldAllocsZero: the fused drain (nil emit, dirty
// set at the dense-scan threshold) is also a zero-allocation epoch in steady
// state.
func TestSteadyStateNilEmitDirtyFoldAllocsZero(t *testing.T) {
	_, pts, _, tr := trackedFixture(t, 64)
	s := ckpt.NewSession()
	w := ckpt.NewWriter(ckpt.WithSession(s))
	epoch := func() {
		// 4 entries over 64 objects sits exactly on the scan threshold, so
		// the fold takes the fused drain every epoch.
		for _, i := range []int{3, 17, 40, 63} {
			pts[i].x++
			pts[i].info.Mark()
		}
		w.Start(ckpt.Incremental)
		if err := w.CheckpointDirty(tr, nil); err != nil {
			t.Fatal(err)
		}
		if _, _, err := w.Finish(); err != nil {
			t.Fatal(err)
		}
		if !s.Commit(w.Epoch()) {
			t.Fatal("epoch not pending at Commit")
		}
	}
	for i := 0; i < 3; i++ {
		epoch()
	}
	if avg := testing.AllocsPerRun(50, epoch); avg != 0 {
		t.Fatalf("steady-state nil-emit epoch allocates %v per run, want 0", avg)
	}
}
