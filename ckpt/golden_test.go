package ckpt_test

import (
	"encoding/hex"
	"testing"

	"ickpt/ckpt"
	"ickpt/wire"
)

// TestWireGoldenBytes pins the scalar encodings documented in
// docs/FORMAT.md. A failure means the wire format changed: that is an
// incompatible change and requires a version bump, not a golden update.
func TestWireGoldenBytes(t *testing.T) {
	var e wire.Encoder
	e.Uvarint(0)
	e.Uvarint(300)
	e.Varint(-2)
	e.Float64(1.5)
	e.Bool(true)
	e.String("hi")
	e.BytesField([]byte{0xaa})

	const want = "00" + // uvarint 0
		"ac02" + // uvarint 300
		"03" + // zig-zag -2
		"000000000000f83f" + // float64 1.5 LE
		"01" + // bool true
		"026869" + // len 2, "hi"
		"01aa" // len 1, 0xaa
	if got := hex.EncodeToString(e.Bytes()); got != want {
		t.Errorf("wire golden mismatch:\n got %s\nwant %s", got, want)
	}
}

// TestBodyGoldenBytes pins the checkpoint body framing: header, record
// framing, traversal order.
func TestBodyGoldenBytes(t *testing.T) {
	d := ckpt.NewDomain()
	b := newBox(d, 7) // id 1
	p := newPoint(d, 1, -1, "z")
	b.head = p // id 2

	w := ckpt.NewWriter()
	w.Start(ckpt.Incremental)
	if err := w.Checkpoint(b); err != nil {
		t.Fatal(err)
	}
	body, _, err := w.Finish()
	if err != nil {
		t.Fatal(err)
	}

	const want = "01" + // body version
		"02" + // mode incremental
		"01" + // epoch 1
		// record: id=1 (box), typeID uvarint (FNV-1a of
		// "ckpttest.box"), len=2, payload{varint 7 = 0x0e, child id 2}
		"01" + "c0ddd7920c" + "02" + "0e02" +
		// record: id=2 (point), typeID uvarint, len=5, payload
		// {varint 1 = 0x02, varint -1 = 0x01, "z" = 0x01 0x7a, nil next}
		"02" + "f7c6918308" + "05" + "0201017a00"
	if got := hex.EncodeToString(body); got != want {
		t.Errorf("body golden mismatch:\n got %s\nwant %s", got, want)
	}
}
