package ckpt_test

import (
	"fmt"

	"ickpt/ckpt"
	"ickpt/wire"
)

// counter is a minimal checkpointable object.
type counter struct {
	Info ckpt.Info
	N    int64
}

var typeCounter = ckpt.TypeIDOf("example.counter")

func (c *counter) CheckpointInfo() *ckpt.Info    { return &c.Info }
func (c *counter) CheckpointTypeID() ckpt.TypeID { return typeCounter }
func (c *counter) Record(e *wire.Encoder)        { e.Varint(c.N) }
func (c *counter) Fold(*ckpt.Writer) error       { return nil }
func (c *counter) Restore(d *wire.Decoder, _ *ckpt.Resolver) error {
	c.N = d.Varint()
	return nil
}

// Example shows the full cycle: checkpoint, mutate, incremental
// checkpoint, rebuild.
func Example() {
	domain := ckpt.NewDomain()
	c := &counter{Info: ckpt.NewInfo(domain), N: 1}

	w := ckpt.NewWriter()
	w.Start(ckpt.Full)
	if err := w.Checkpoint(c); err != nil {
		fmt.Println("checkpoint:", err)
		return
	}
	base, _, _ := w.Finish()
	baseCopy := append([]byte(nil), base...)

	// Mutate; the object must be marked modified at the language level.
	c.N = 42
	c.Info.SetModified()

	w.Start(ckpt.Incremental)
	if err := w.Checkpoint(c); err != nil {
		fmt.Println("checkpoint:", err)
		return
	}
	delta, stats, _ := w.Finish()

	reg := ckpt.NewRegistry()
	reg.MustRegister("example.counter", func(id uint64) ckpt.Restorable {
		return &counter{Info: ckpt.RestoredInfo(id)}
	})
	rb := ckpt.NewRebuilder(reg)
	_ = rb.Apply(baseCopy)
	_ = rb.Apply(append([]byte(nil), delta...))
	objs, _ := rb.Build(nil)

	restored := objs[c.Info.ID()].(*counter)
	fmt.Printf("recorded %d object(s), restored N=%d\n", stats.Recorded, restored.N)
	// Output:
	// recorded 1 object(s), restored N=42
}

// ExampleWriter_incremental shows that unmodified objects are skipped.
func ExampleWriter() {
	domain := ckpt.NewDomain()
	a := &counter{Info: ckpt.NewInfo(domain), N: 1}
	b := &counter{Info: ckpt.NewInfo(domain), N: 2}

	w := ckpt.NewWriter()
	w.Start(ckpt.Incremental) // first checkpoint captures the new objects
	_ = w.Checkpoint(a)
	_ = w.Checkpoint(b)
	_, first, _ := w.Finish()

	a.N = 10
	a.Info.SetModified() // only a changes

	w.Start(ckpt.Incremental)
	_ = w.Checkpoint(a)
	_ = w.Checkpoint(b)
	_, second, _ := w.Finish()

	fmt.Printf("first: recorded=%d; second: recorded=%d skipped=%d\n",
		first.Recorded, second.Recorded, second.Skipped)
	// Output:
	// first: recorded=2; second: recorded=1 skipped=1
}
