package parfold

// Spawned returns the number of fold goroutines launched over the folder's
// lifetime, for tests asserting the degraded-to-sequential path runs inline.
func (f *Folder) Spawned() int { return f.spawned }
