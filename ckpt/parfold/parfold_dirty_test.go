package parfold_test

import (
	"bytes"
	"errors"
	"fmt"
	"math/rand"
	"runtime"
	"testing"

	"ickpt/ckpt"
	"ickpt/ckpt/parfold"
	"ickpt/internal/synth"
)

// watched builds and drains a synth population and attaches a watched
// tracker to it.
func watched(t *testing.T, shape synth.Shape) (*synth.Workload, *ckpt.Tracker) {
	t.Helper()
	w := synth.Build(shape)
	drain(t, w)
	tr := ckpt.NewTracker()
	w.Domain.AttachTracker(tr)
	if err := tr.Watch(w.Roots()...); err != nil {
		t.Fatal(err)
	}
	return w, tr
}

// seqDirty takes a sequential dirty checkpoint at the writer's next epoch.
func seqDirty(t *testing.T, wr *ckpt.Writer, tr *ckpt.Tracker) ([]byte, ckpt.Stats) {
	t.Helper()
	wr.Start(ckpt.Incremental)
	if err := wr.CheckpointDirty(tr, ckpt.EmitObject); err != nil {
		t.Fatalf("sequential dirty checkpoint: %v", err)
	}
	body, stats, err := wr.Finish()
	if err != nil {
		t.Fatalf("sequential dirty finish: %v", err)
	}
	return body, stats
}

// TestFoldDirtyMatchesSequential: the parallel dirty fold's merged body is
// byte-identical to ckpt.Writer.CheckpointDirty over a twin population, for
// every worker/shard geometry.
func TestFoldDirtyMatchesSequential(t *testing.T) {
	shape := synth.Shape{Structures: 50, ListLen: 6, Kind: synth.Ints1}
	pat := synth.ModPattern{Percent: 30, ModifiableLists: 3}
	const rounds = 3

	for _, workers := range []int{1, 2, 4} {
		for _, shards := range []int{0, 1, 3, 16} {
			t.Run(fmt.Sprintf("w%d/s%d", workers, shards), func(t *testing.T) {
				wa, tra := watched(t, shape)
				wb, trb := watched(t, shape)
				rngA := rand.New(rand.NewSource(11))
				rngB := rand.New(rand.NewSource(11))
				wr := ckpt.NewWriter()
				folder := parfold.NewGeneric(
					parfold.WithWorkers(workers), parfold.WithShards(shards))
				defer folder.Release()
				for round := 0; round < rounds; round++ {
					wa.Mutate(rngA, pat)
					wb.Mutate(rngB, pat)
					want, wantStats := seqDirty(t, wr, tra)
					got, gotStats, err := folder.FoldDirty(trb, ckpt.EmitObject)
					if err != nil {
						t.Fatalf("round %d: parallel dirty fold: %v", round, err)
					}
					if !bytes.Equal(got, want) {
						t.Fatalf("round %d: parallel dirty body differs from sequential (%d vs %d bytes)",
							round, len(got), len(want))
					}
					if gotStats != wantStats {
						t.Errorf("round %d: stats = %+v, want %+v", round, gotStats, wantStats)
					}
				}
			})
		}
	}
}

// TestFoldDirtySingleWorkerInline: with one effective worker the dirty fold
// runs inline on the caller's goroutine — no pool is spun up.
func TestFoldDirtySingleWorkerInline(t *testing.T) {
	w, tr := watched(t, synth.Shape{Structures: 10, ListLen: 4, Kind: synth.Ints1})
	w.MutateEvery(0.5)
	folder := parfold.NewGeneric(parfold.WithWorkers(1), parfold.WithShards(8))
	defer folder.Release()
	if _, _, err := folder.FoldDirty(tr, ckpt.EmitObject); err != nil {
		t.Fatal(err)
	}
	if got := folder.Spawned(); got != 0 {
		t.Fatalf("single-worker dirty fold spawned %d goroutines, want 0", got)
	}
}

// TestFoldSingleWorkerInline: the traversal fold degrades identically — one
// effective worker (explicit, or via shard clamp) means no goroutines.
func TestFoldSingleWorkerInline(t *testing.T) {
	cases := []struct {
		name string
		opts []parfold.Option
	}{
		{"workers1", []parfold.Option{parfold.WithWorkers(1)}},
		{"shardclamp", []parfold.Option{parfold.WithWorkers(8), parfold.WithShards(1)}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			w := synth.Build(synth.Shape{Structures: 10, ListLen: 4, Kind: synth.Ints1})
			folder := parfold.NewGeneric(tc.opts...)
			defer folder.Release()
			if _, _, err := folder.Fold(ckpt.Full, w.Roots()); err != nil {
				t.Fatal(err)
			}
			if got := folder.Spawned(); got != 0 {
				t.Fatalf("%s fold spawned %d goroutines, want 0", tc.name, got)
			}
		})
	}
}

// TestFoldGOMAXPROCS1Inline: on a single-P process the folder degrades to the
// inline path regardless of the configured worker count.
func TestFoldGOMAXPROCS1Inline(t *testing.T) {
	prev := runtime.GOMAXPROCS(1)
	defer runtime.GOMAXPROCS(prev)
	w, tr := watched(t, synth.Shape{Structures: 10, ListLen: 4, Kind: synth.Ints1})
	w.MutateEvery(0.5)
	folder := parfold.NewGeneric(parfold.WithWorkers(8))
	defer folder.Release()
	if _, _, err := folder.Fold(ckpt.Full, w.Roots()); err != nil {
		t.Fatal(err)
	}
	w.MutateEvery(0.5)
	if _, _, err := folder.FoldDirty(tr, ckpt.EmitObject); err != nil {
		t.Fatal(err)
	}
	if got := folder.Spawned(); got != 0 {
		t.Fatalf("GOMAXPROCS=1 folds spawned %d goroutines, want 0", got)
	}
}

// TestFoldDirtyFailureRequeues: a failed parallel dirty fold re-enqueues the
// full dirty set (un-emitted tail via Requeue, emitted prefix via the abort's
// re-mark), so the session-driven retake recovers everything.
func TestFoldDirtyFailureRequeues(t *testing.T) {
	shape := synth.Shape{Structures: 20, ListLen: 4, Kind: synth.Ints1}
	w, tr := watched(t, shape)
	s := ckpt.NewSession()
	dirtied := w.MutateEvery(0.5)
	if dirtied == 0 {
		t.Fatal("fixture dirtied nothing")
	}
	boom := errors.New("boom")
	n := 0
	failing := func(em *ckpt.Emitter, o ckpt.Checkpointable) error {
		if n == dirtied/2 {
			return boom
		}
		n++
		return ckpt.EmitObject(em, o)
	}
	folder := parfold.NewGeneric(
		parfold.WithWorkers(1), parfold.WithSession(s)) // 1 worker: deterministic failure point
	defer folder.Release()
	if _, _, err := folder.FoldDirty(tr, failing); !errors.Is(err, boom) {
		t.Fatalf("FoldDirty = %v, want boom", err)
	}
	if got := tr.Dirty(); got != dirtied {
		t.Fatalf("Dirty() = %d after failed fold, want %d re-enqueued", got, dirtied)
	}
	// The retake matches a sequential dirty fold over a twin with the same
	// mutation, pinned to the same epoch.
	twinW, twinTr := watched(t, shape)
	twinW.MutateEvery(0.5)
	wr := ckpt.NewWriter()
	want, _ := seqDirty(t, wr, twinTr) // twin writer's first epoch is 1
	got, _, err := folder.FoldDirtyAt(1, tr, ckpt.EmitObject)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, want) {
		t.Fatalf("retake body differs from sequential reference (%d vs %d bytes)", len(got), len(want))
	}
}
