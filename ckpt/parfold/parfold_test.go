package parfold_test

import (
	"bytes"
	"fmt"
	"math/rand"
	"path/filepath"
	"sync/atomic"
	"testing"

	"ickpt/ckpt"
	"ickpt/ckpt/parfold"
	"ickpt/internal/synth"
	"ickpt/reflectckpt"
	"ickpt/spec"
	"ickpt/stablelog"
	"ickpt/wire"
)

// twin builds two identical synth populations so one can be folded
// sequentially and the other in parallel without the folds interfering
// through the shared modified flags.
func twin(shape synth.Shape) (*synth.Workload, *synth.Workload) {
	return synth.Build(shape), synth.Build(shape)
}

// drain clears every modified flag of w, failing the test on error.
func drain(t *testing.T, w *synth.Workload) {
	t.Helper()
	if err := w.Drain(); err != nil {
		t.Fatalf("drain: %v", err)
	}
}

// seqFold folds the roots in ascending id order with the generic driver into
// a fresh body at the writer's next epoch.
func seqFold(t *testing.T, wr *ckpt.Writer, mode ckpt.Mode, roots []ckpt.Checkpointable) ([]byte, ckpt.Stats) {
	t.Helper()
	wr.Start(mode)
	for _, r := range roots {
		if err := wr.Checkpoint(r); err != nil {
			t.Fatalf("sequential checkpoint: %v", err)
		}
	}
	body, stats, err := wr.Finish()
	if err != nil {
		t.Fatalf("sequential finish: %v", err)
	}
	return body, stats
}

// shuffled returns a copy of roots in a deterministic non-canonical order,
// exercising the folder's canonical re-ordering.
func shuffled(roots []ckpt.Checkpointable, seed int64) []ckpt.Checkpointable {
	out := append([]ckpt.Checkpointable(nil), roots...)
	rand.New(rand.NewSource(seed)).Shuffle(len(out), func(i, j int) {
		out[i], out[j] = out[j], out[i]
	})
	return out
}

func TestParallelMatchesSequentialSynth(t *testing.T) {
	shape := synth.Shape{Structures: 60, ListLen: 5, Kind: synth.Ints1}
	pat := synth.ModPattern{Percent: 50, ModifiableLists: 3}
	const rounds = 3

	for _, mode := range []ckpt.Mode{ckpt.Full, ckpt.Incremental} {
		for _, workers := range []int{1, 2, 4} {
			for _, shards := range []int{0, 1, 3, 16} {
				name := fmt.Sprintf("%v/w%d/s%d", mode, workers, shards)
				t.Run(name, func(t *testing.T) {
					wa, wb := twin(shape)
					drain(t, wa)
					drain(t, wb)
					rngA := rand.New(rand.NewSource(7))
					rngB := rand.New(rand.NewSource(7))
					wr := ckpt.NewWriter()
					folder := parfold.NewGeneric(
						parfold.WithWorkers(workers), parfold.WithShards(shards))
					for round := 0; round < rounds; round++ {
						wa.Mutate(rngA, pat)
						wb.Mutate(rngB, pat)
						want, wantStats := seqFold(t, wr, mode, wa.Roots())
						got, gotStats, err := folder.Fold(mode, shuffled(wb.Roots(), int64(round)))
						if err != nil {
							t.Fatalf("round %d: parallel fold: %v", round, err)
						}
						if !bytes.Equal(got, want) {
							t.Fatalf("round %d: parallel body differs from sequential (%d vs %d bytes)",
								round, len(got), len(want))
						}
						if gotStats != wantStats {
							t.Errorf("round %d: stats = %+v, want %+v", round, gotStats, wantStats)
						}
					}
				})
			}
		}
	}
}

func TestEngineShardFoldsMatchSequential(t *testing.T) {
	shape := synth.Shape{Structures: 40, ListLen: 4, Kind: synth.Ints1}
	mod := synth.ModPattern{Percent: 100, ModifiableLists: 3}
	pat := mod.SpecPattern(shape.Kind)

	plan, err := synth.CompilePlan(shape.Kind, pat, spec.WithMode(ckpt.Incremental))
	if err != nil {
		t.Fatalf("compile plan: %v", err)
	}
	genKey := synth.GenKey(shape.Kind, pat.Name)
	gen, ok := synth.Generated(genKey)
	if !ok {
		t.Fatalf("no generated routine %q", genKey)
	}

	cases := []struct {
		name    string
		seq     func(w *synth.Workload, wr *ckpt.Writer) error
		newFold func() parfold.FoldFunc
	}{
		{
			name: "reflect",
			seq: func(w *synth.Workload, wr *ckpt.Writer) error {
				return w.CheckpointReflect(reflectckpt.NewEngine(), wr)
			},
			newFold: func() parfold.FoldFunc { return reflectckpt.ShardFold() },
		},
		{
			name:    "plan",
			seq:     func(w *synth.Workload, wr *ckpt.Writer) error { return w.CheckpointPlan(plan, wr) },
			newFold: func() parfold.FoldFunc { return plan.ShardFold() },
		},
		{
			name:    "codegen",
			seq:     func(w *synth.Workload, wr *ckpt.Writer) error { return w.CheckpointGenerated(genKey, wr) },
			newFold: func() parfold.FoldFunc { return parfold.FoldEmitter(gen) },
		},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			wa, wb := twin(shape)
			drain(t, wa)
			drain(t, wb)
			rngA := rand.New(rand.NewSource(3))
			rngB := rand.New(rand.NewSource(3))
			wr := ckpt.NewWriter()
			folder := parfold.New(tc.newFold, parfold.WithWorkers(3), parfold.WithShards(5))
			for round := 0; round < 2; round++ {
				wa.Mutate(rngA, mod)
				wb.Mutate(rngB, mod)
				wr.Start(ckpt.Incremental)
				if err := tc.seq(wa, wr); err != nil {
					t.Fatalf("round %d: sequential: %v", round, err)
				}
				want, _, err := wr.Finish()
				if err != nil {
					t.Fatalf("round %d: finish: %v", round, err)
				}
				got, _, err := folder.Fold(ckpt.Incremental, wb.Roots())
				if err != nil {
					t.Fatalf("round %d: parallel: %v", round, err)
				}
				if !bytes.Equal(got, want) {
					t.Fatalf("round %d: parallel %s body differs from sequential", round, tc.name)
				}
			}
		})
	}
}

// TestFoldDeterminism100 pins the determinism regression from the issue: a
// hundred parallel folds of the same quiescent population, across goroutine
// schedules, must produce identical bytes — and the bytes of the sequential
// fold at that.
func TestFoldDeterminism100(t *testing.T) {
	shape := synth.Shape{Structures: 50, ListLen: 3, Kind: synth.Ints1}
	w := synth.Build(shape)
	wr := ckpt.NewWriter()
	want, _ := seqFold(t, wr, ckpt.Full, w.Roots())
	want = append([]byte(nil), want...)

	folder := parfold.NewGeneric(parfold.WithWorkers(4), parfold.WithShards(7))
	for i := 0; i < 100; i++ {
		got, _, err := folder.FoldAt(ckpt.Full, 1, shuffled(w.Roots(), int64(i)))
		if err != nil {
			t.Fatalf("run %d: %v", i, err)
		}
		if !bytes.Equal(got, want) {
			t.Fatalf("run %d: body differs from reference", i)
		}
	}
}

func TestFoldToAsyncWriter(t *testing.T) {
	shape := synth.Shape{Structures: 30, ListLen: 3, Kind: synth.Ints10}
	pat := synth.ModPattern{Percent: 100, ModifiableLists: 2}
	w := synth.Build(shape)

	lg, err := stablelog.Create(filepath.Join(t.TempDir(), "par.log"))
	if err != nil {
		t.Fatalf("create log: %v", err)
	}
	async := stablelog.NewAsyncWriter(lg, stablelog.WithSyncEvery(2))
	folder := parfold.NewGeneric(parfold.WithWorkers(4))

	var want [][]byte
	record := func(mode ckpt.Mode) {
		t.Helper()
		body, _, err := folder.Fold(mode, w.Roots())
		if err != nil {
			t.Fatalf("fold: %v", err)
		}
		want = append(want, append([]byte(nil), body...))
		if err := async.Append(mode, folder.Epoch(), body); err != nil {
			t.Fatalf("append: %v", err)
		}
	}
	record(ckpt.Full)
	rng := rand.New(rand.NewSource(11))
	for i := 0; i < 3; i++ {
		w.Mutate(rng, pat)
		record(ckpt.Incremental)
	}
	// One more through the FoldTo convenience path.
	w.Mutate(rng, pat)
	stats, err := folder.FoldTo(async, ckpt.Incremental, w.Roots())
	if err != nil {
		t.Fatalf("FoldTo: %v", err)
	}
	if stats.Recorded == 0 {
		t.Fatalf("FoldTo recorded nothing")
	}
	if err := async.Close(); err != nil {
		t.Fatalf("close async: %v", err)
	}
	if err := lg.Close(); err != nil {
		t.Fatalf("close log: %v", err)
	}

	lg2, err := stablelog.Open(filepath.Join(lg.Path()))
	if err != nil {
		t.Fatalf("reopen: %v", err)
	}
	defer lg2.Close()
	segs := lg2.Segments()
	if len(segs) != len(want)+1 {
		t.Fatalf("segments = %d, want %d", len(segs), len(want)+1)
	}
	for i, wantBody := range want {
		got, err := lg2.Read(segs[i].Seq)
		if err != nil {
			t.Fatalf("read segment %d: %v", i, err)
		}
		if !bytes.Equal(got, wantBody) {
			t.Fatalf("segment %d differs from folded body", i)
		}
	}
	rb := ckpt.NewRebuilder(synth.Registry())
	if err := lg2.Recover(rb); err != nil {
		t.Fatalf("recover: %v", err)
	}
	if rb.Objects() != w.Objects() {
		t.Fatalf("recovered %d objects, want %d", rb.Objects(), w.Objects())
	}
	if _, err := rb.Build(ckpt.NewDomain()); err != nil {
		t.Fatalf("build: %v", err)
	}
}

// leaf is a minimal checkpointable for error-path tests.
type leaf struct {
	Info ckpt.Info
	V    int64
}

func (l *leaf) CheckpointInfo() *ckpt.Info    { return &l.Info }
func (l *leaf) CheckpointTypeID() ckpt.TypeID { return ckpt.TypeIDOf("parfold.leaf") }
func (l *leaf) Record(e *wire.Encoder)        { e.Varint(l.V) }
func (l *leaf) Fold(w *ckpt.Writer) error     { return nil }

func TestFoldErrorDeterministic(t *testing.T) {
	d := ckpt.NewDomain()
	roots := make([]ckpt.Checkpointable, 40)
	for i := range roots {
		roots[i] = &leaf{Info: ckpt.NewInfo(d), V: int64(i)}
	}
	newFold := func() parfold.FoldFunc {
		return func(w *ckpt.Writer, root ckpt.Checkpointable) error {
			if id := root.CheckpointInfo().ID(); id%5 == 2 {
				return fmt.Errorf("boom at %d", id)
			}
			return w.Checkpoint(root)
		}
	}
	folder := parfold.New(newFold, parfold.WithWorkers(4), parfold.WithShards(8))
	var first string
	for i := 0; i < 50; i++ {
		_, _, err := folder.FoldAt(ckpt.Full, 1, roots)
		if err == nil {
			t.Fatalf("run %d: fold succeeded, want error", i)
		}
		if i == 0 {
			first = err.Error()
			continue
		}
		if err.Error() != first {
			t.Fatalf("run %d: error %q, want %q (deterministic selection)", i, err, first)
		}
	}
}

func TestEpochsAndEmptyFold(t *testing.T) {
	folder := parfold.NewGeneric(parfold.WithWorkers(2))
	inspect := func(body []byte) ckpt.BodyInfo {
		t.Helper()
		info, err := ckpt.InspectBody(body, nil)
		if err != nil {
			t.Fatalf("inspect: %v", err)
		}
		return info
	}

	body, stats, err := folder.Fold(ckpt.Full, nil)
	if err != nil {
		t.Fatalf("empty fold: %v", err)
	}
	if info := inspect(body); info.Epoch != 1 || info.Records != 0 || info.Mode != ckpt.Full {
		t.Fatalf("empty fold header = %+v", info)
	}
	if stats.Bytes != len(body) {
		t.Fatalf("stats.Bytes = %d, body = %d", stats.Bytes, len(body))
	}

	body, _, err = folder.Fold(ckpt.Incremental, nil)
	if err != nil {
		t.Fatalf("second fold: %v", err)
	}
	if info := inspect(body); info.Epoch != 2 {
		t.Fatalf("second fold epoch = %d, want 2", info.Epoch)
	}
	if _, _, err := folder.FoldAt(ckpt.Incremental, 9, nil); err != nil {
		t.Fatalf("FoldAt: %v", err)
	}
	if folder.Epoch() != 9 {
		t.Fatalf("epoch after FoldAt = %d, want 9", folder.Epoch())
	}
	body, _, err = folder.Fold(ckpt.Incremental, nil)
	if err != nil {
		t.Fatalf("fold after FoldAt: %v", err)
	}
	if info := inspect(body); info.Epoch != 10 {
		t.Fatalf("epoch after FoldAt+Fold = %d, want 10", info.Epoch)
	}
}

// TestNoClaimsAfterFailure pins the early-stop regression: once a fold has
// failed, the epoch is doomed and no further roots may be folded. A single
// worker makes the schedule deterministic — and runs the inline sequential
// path, which folds roots in canonical ascending-id order: the failing call
// on the lowest id comes first, and nothing after it may fold (an epoch
// whose body will be discarded must not burn CPU on the remaining ~39
// roots).
func TestNoClaimsAfterFailure(t *testing.T) {
	const nRoots, nShards = 40, 8
	d := ckpt.NewDomain()
	roots := make([]ckpt.Checkpointable, nRoots)
	lowest := uint64(1<<63 - 1)
	for i := range roots {
		l := &leaf{Info: ckpt.NewInfo(d), V: int64(i)}
		roots[i] = l
		if id := l.Info.ID(); id < lowest {
			lowest = id
		}
	}

	var calls atomic.Int32
	newFold := func() parfold.FoldFunc {
		return func(w *ckpt.Writer, root ckpt.Checkpointable) error {
			calls.Add(1)
			if root.CheckpointInfo().ID() == lowest {
				return fmt.Errorf("boom at %d", lowest)
			}
			return w.Checkpoint(root)
		}
	}
	folder := parfold.New(newFold, parfold.WithWorkers(1), parfold.WithShards(nShards))
	if _, _, err := folder.Fold(ckpt.Full, roots); err == nil {
		t.Fatal("fold succeeded, want error")
	}
	// The failing call on the lowest id is the first fold of the canonical
	// sequence; nothing after that. Before the fix the worker kept going
	// through all eight shards.
	want := int32(1)
	if got := calls.Load(); got != want {
		t.Fatalf("fold calls after failure = %d, want %d (claiming must stop)", got, want)
	}
}

// TestFoldSessionAbortRecapture: with a session attached, an aborted epoch's
// re-marked flags make a retake of the same epoch byte-identical to the
// fold whose body was lost.
func TestFoldSessionAbortRecapture(t *testing.T) {
	shape := synth.Shape{Structures: 30, ListLen: 4, Kind: synth.Ints1}
	w := synth.Build(shape)

	s := ckpt.NewSession()
	folder := parfold.NewGeneric(parfold.WithWorkers(4), parfold.WithSession(s))
	first, _, err := folder.FoldAt(ckpt.Incremental, 1, w.Roots())
	if err != nil {
		t.Fatalf("first fold: %v", err)
	}
	first = append([]byte(nil), first...)
	if s.Pending() != 1 {
		t.Fatalf("pending = %d after fold, want 1", s.Pending())
	}
	// The body is lost downstream; abort re-marks every cleared flag ...
	if got := s.Abort(1); got == 0 {
		t.Fatal("abort re-marked nothing")
	}
	// ... so retaking the same epoch recaptures exactly the lost bytes.
	second, _, err := folder.FoldAt(ckpt.Incremental, 1, w.Roots())
	if err != nil {
		t.Fatalf("retake: %v", err)
	}
	if !bytes.Equal(first, second) {
		t.Fatalf("retake after abort differs from lost body (%d vs %d bytes)", len(second), len(first))
	}
	s.Commit(1)
	if st := s.Stats(); st.Aborts != 1 || st.Commits != 1 {
		t.Fatalf("session stats = %+v, want 1 abort + 1 commit", st)
	}
}

// TestFoldFailureRemarks: a failed parallel fold re-marks every flag its
// workers cleared — including shards that folded cleanly — with and without
// a session attached.
func TestFoldFailureRemarks(t *testing.T) {
	for _, withSession := range []bool{false, true} {
		t.Run(fmt.Sprintf("session=%v", withSession), func(t *testing.T) {
			d := ckpt.NewDomain()
			roots := make([]ckpt.Checkpointable, 40)
			var failID uint64
			for i := range roots {
				l := &leaf{Info: ckpt.NewInfo(d), V: int64(i)}
				roots[i] = l
				failID = l.Info.ID() // fail on the highest id: most flags cleared first
			}
			newFold := func() parfold.FoldFunc {
				return func(w *ckpt.Writer, root ckpt.Checkpointable) error {
					if root.CheckpointInfo().ID() == failID {
						return fmt.Errorf("boom at %d", failID)
					}
					return w.Checkpoint(root)
				}
			}
			s := ckpt.NewSession()
			opts := []parfold.Option{parfold.WithWorkers(4), parfold.WithShards(8)}
			if withSession {
				opts = append(opts, parfold.WithSession(s))
			}
			folder := parfold.New(newFold, opts...)
			if _, _, err := folder.Fold(ckpt.Incremental, roots); err == nil {
				t.Fatal("fold succeeded, want error")
			}
			for _, r := range roots {
				if !r.CheckpointInfo().Modified() {
					t.Fatalf("id %d lost its modified flag in the failed epoch", r.CheckpointInfo().ID())
				}
			}
			if withSession {
				if st := s.Stats(); st.Aborts != 1 || st.Remarked == 0 {
					t.Fatalf("session stats = %+v, want 1 abort with re-marks", st)
				}
			}
		})
	}
}

// errSink fails every Append.
type errSink struct{ err error }

func (s errSink) Append(ckpt.Mode, uint64, []byte) error { return s.err }

// TestFoldToSinkFailureRemarks: a sink that rejects the merged body aborts
// the epoch — flags re-marked through the session when one is attached,
// directly otherwise.
func TestFoldToSinkFailureRemarks(t *testing.T) {
	for _, withSession := range []bool{false, true} {
		t.Run(fmt.Sprintf("session=%v", withSession), func(t *testing.T) {
			d := ckpt.NewDomain()
			roots := make([]ckpt.Checkpointable, 20)
			for i := range roots {
				roots[i] = &leaf{Info: ckpt.NewInfo(d), V: int64(i)}
			}
			s := ckpt.NewSession()
			opts := []parfold.Option{parfold.WithWorkers(2)}
			if withSession {
				opts = append(opts, parfold.WithSession(s))
			}
			folder := parfold.New(parfold.Generic, opts...)
			boom := fmt.Errorf("sink on fire")
			if _, err := folder.FoldTo(errSink{boom}, ckpt.Incremental, roots); err != boom {
				t.Fatalf("FoldTo = %v, want sink error", err)
			}
			for _, r := range roots {
				if !r.CheckpointInfo().Modified() {
					t.Fatalf("id %d lost its modified flag to the failed sink", r.CheckpointInfo().ID())
				}
			}
		})
	}
}
