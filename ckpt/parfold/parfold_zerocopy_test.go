package parfold_test

import (
	"bytes"
	"errors"
	"math/rand"
	"path/filepath"
	"runtime"
	"testing"
	"time"

	"ickpt/ckpt"
	"ickpt/ckpt/parfold"
	"ickpt/internal/synth"
	"ickpt/stablelog"
	"ickpt/wire"
)

// appendOnly hides an AsyncWriter's Reserve/Submit methods so FoldTo takes
// the copying Append path — the byte-identity reference for the zero-copy
// handoff.
type appendOnly struct {
	aw *stablelog.AsyncWriter
}

func (s appendOnly) Append(mode ckpt.Mode, epoch uint64, body []byte) error {
	return s.aw.Append(mode, epoch, body)
}

// recordingSink wraps an AsyncWriter and records the Reserve/Submit/Recycle
// traffic FoldTo generates, so tests can assert the ownership contract from
// outside: every Reserve is balanced by exactly one Submit or Recycle.
type recordingSink struct {
	*stablelog.AsyncWriter
	reserved  []*wire.Encoder
	submitted []*wire.Encoder
	recycled  []*wire.Encoder
}

func (s *recordingSink) Reserve() *wire.Encoder {
	enc := s.AsyncWriter.Reserve()
	s.reserved = append(s.reserved, enc)
	return enc
}

func (s *recordingSink) Submit(mode ckpt.Mode, epoch uint64, enc *wire.Encoder) error {
	s.submitted = append(s.submitted, enc)
	return s.AsyncWriter.Submit(mode, epoch, enc)
}

func (s *recordingSink) Recycle(enc *wire.Encoder) {
	s.recycled = append(s.recycled, enc)
	s.AsyncWriter.Recycle(enc)
}

func newTestAsync(t *testing.T, name string) (*stablelog.Log, *stablelog.AsyncWriter) {
	t.Helper()
	lg, err := stablelog.Create(filepath.Join(t.TempDir(), name))
	if err != nil {
		t.Fatalf("create log: %v", err)
	}
	t.Cleanup(func() { lg.Close() })
	return lg, stablelog.NewAsyncWriter(lg, stablelog.WithSyncEvery(1))
}

// TestFoldToZeroCopyByteIdentical: FoldTo into a ReserveSink (the zero-copy
// handoff) logs segments byte-identical to FoldTo through the copying Append
// path, on both the single-worker inline encode and the multi-worker merge
// into the reserved buffer.
func TestFoldToZeroCopyByteIdentical(t *testing.T) {
	for _, workers := range []int{1, 4} {
		t.Run(map[int]string{1: "inline", 4: "sharded"}[workers], func(t *testing.T) {
			if workers > 1 {
				prev := runtime.GOMAXPROCS(workers)
				defer runtime.GOMAXPROCS(prev)
			}
			shape := synth.Shape{Structures: 50, ListLen: 6, Kind: synth.Ints10}
			wa, wb := twin(shape)
			drain(t, wa)
			drain(t, wb)

			lgA, awA := newTestAsync(t, "copy.log")
			lgB, awB := newTestAsync(t, "zc.log")

			foldA := parfold.NewGeneric(parfold.WithWorkers(workers))
			foldB := parfold.NewGeneric(parfold.WithWorkers(workers))

			pat := synth.ModPattern{Percent: 40, ModifiableLists: 2}
			rngA := rand.New(rand.NewSource(11))
			rngB := rand.New(rand.NewSource(11))
			for round := 0; round < 4; round++ {
				mode := ckpt.Incremental
				if round == 0 {
					mode = ckpt.Full
				}
				if _, err := foldA.FoldTo(appendOnly{awA}, mode, wa.Roots()); err != nil {
					t.Fatalf("append-path fold: %v", err)
				}
				if _, err := foldB.FoldTo(awB, mode, wb.Roots()); err != nil {
					t.Fatalf("zero-copy fold: %v", err)
				}
				wa.Mutate(rngA, pat)
				wb.Mutate(rngB, pat)
			}
			if err := awA.Close(); err != nil {
				t.Fatalf("close A: %v", err)
			}
			if err := awB.Close(); err != nil {
				t.Fatalf("close B: %v", err)
			}

			segsA, segsB := lgA.Segments(), lgB.Segments()
			if len(segsA) != len(segsB) || len(segsA) == 0 {
				t.Fatalf("segment counts differ: append-path %d, zero-copy %d", len(segsA), len(segsB))
			}
			for i := range segsA {
				ba, err := lgA.Read(segsA[i].Seq)
				if err != nil {
					t.Fatal(err)
				}
				bb, err := lgB.Read(segsB[i].Seq)
				if err != nil {
					t.Fatal(err)
				}
				if !bytes.Equal(ba, bb) {
					t.Fatalf("segment %d: zero-copy body differs from append-path body", i)
				}
			}
		})
	}
}

// TestFoldToAbortRecyclesReservation: a fold that fails after FoldTo has
// reserved its sink buffer must hand the reservation back via Recycle —
// never Submit — and repeated failures must keep reusing the same bounded
// free list instead of leaking a buffer per aborted epoch. Covers both the
// inline path and the multi-worker shard-failure path.
func TestFoldToAbortRecyclesReservation(t *testing.T) {
	for _, workers := range []int{1, 4} {
		t.Run(map[int]string{1: "inline", 4: "sharded"}[workers], func(t *testing.T) {
			if workers > 1 {
				prev := runtime.GOMAXPROCS(workers)
				defer runtime.GOMAXPROCS(prev)
			}
			shape := synth.Shape{Structures: 40, ListLen: 4, Kind: synth.Ints1}
			w := synth.Build(shape)
			drain(t, w)

			boom := errors.New("boom")
			newFold := func() parfold.FoldFunc {
				return func(wr *ckpt.Writer, root ckpt.Checkpointable) error {
					return boom
				}
			}
			_, aw := newTestAsync(t, "abort.log")
			defer aw.Close()
			sink := &recordingSink{AsyncWriter: aw}
			folder := parfold.New(newFold, parfold.WithWorkers(workers))

			const attempts = 20
			for i := 0; i < attempts; i++ {
				if _, err := folder.FoldTo(sink, ckpt.Full, w.Roots()); !errors.Is(err, boom) {
					t.Fatalf("fold %d error = %v, want boom", i, err)
				}
			}
			if len(sink.reserved) != attempts {
				t.Fatalf("reserved %d buffers over %d folds, want one each", len(sink.reserved), attempts)
			}
			if len(sink.submitted) != 0 {
				t.Fatalf("%d aborted folds submitted bodies", len(sink.submitted))
			}
			if len(sink.recycled) != attempts {
				t.Fatalf("recycled %d of %d aborted reservations (buffers leaked)", len(sink.recycled), attempts)
			}
			for i := range sink.recycled {
				if sink.recycled[i] != sink.reserved[i] {
					t.Fatalf("fold %d recycled a different encoder than it reserved", i)
				}
			}
			// The bounded free list absorbs every abort: after the first
			// recycle, each Reserve reuses a free-listed buffer.
			distinct := map[*wire.Encoder]bool{}
			for _, enc := range sink.reserved {
				distinct[enc] = true
			}
			if len(distinct) > 2 {
				t.Fatalf("%d aborted folds used %d distinct buffers, want <= 2 (free list not reused)", attempts, len(distinct))
			}
		})
	}
}

// TestWorkers1RunsInline pins the satellite contract: a workers=1 folder
// spawns no goroutines regardless of GOMAXPROCS (the old clamp only covered
// GOMAXPROCS=1) and its folds are byte-identical to the sequential writer.
func TestWorkers1RunsInline(t *testing.T) {
	prev := runtime.GOMAXPROCS(4)
	defer runtime.GOMAXPROCS(prev)

	shape := synth.Shape{Structures: 30, ListLen: 5, Kind: synth.Ints10}
	wa, wb := twin(shape)
	drain(t, wa)
	drain(t, wb)

	folder := parfold.NewGeneric(parfold.WithWorkers(1))
	wr := ckpt.NewWriter()
	for round := 0; round < 3; round++ {
		body, _, err := folder.Fold(ckpt.Full, wa.Roots())
		if err != nil {
			t.Fatalf("inline fold: %v", err)
		}
		want, _ := seqFold(t, wr, ckpt.Full, wb.Roots())
		if !bytes.Equal(body, want) {
			t.Fatalf("round %d: inline workers=1 body differs from sequential", round)
		}
	}
	if got := folder.Spawned(); got != 0 {
		t.Fatalf("workers=1 folds spawned %d goroutines, want 0", got)
	}
}

// TestWorkers1SpeedupFloor is the benchmark-backed regression test for the
// workers=1 inline path: folding through a workers=1 Folder must cost no
// more than ~2% over the plain sequential writer (the old path paid shard
// bookkeeping, a merge copy, and a per-epoch sort — 0.69× at worst). The
// measurement takes the min of many interleaved samples and retries to damp
// scheduler noise before failing.
func TestWorkers1SpeedupFloor(t *testing.T) {
	if testing.Short() {
		t.Skip("timing test")
	}
	shape := synth.Shape{Structures: 400, ListLen: 8, Kind: synth.Ints10}
	wa, wb := twin(shape)
	drain(t, wa)
	drain(t, wb)
	rootsSeq, rootsPar := wb.Roots(), wa.Roots()

	wr := ckpt.NewWriter(ckpt.WithEncoder(wire.GetEncoder()))
	folder := parfold.NewGeneric(parfold.WithWorkers(1))

	seqOnce := func() {
		wr.Start(ckpt.Full)
		for _, r := range rootsSeq {
			if err := wr.Checkpoint(r); err != nil {
				t.Fatalf("sequential: %v", err)
			}
		}
		if _, _, err := wr.Finish(); err != nil {
			t.Fatalf("sequential finish: %v", err)
		}
	}
	parOnce := func() {
		if _, _, err := folder.Fold(ckpt.Full, rootsPar); err != nil {
			t.Fatalf("inline fold: %v", err)
		}
	}
	// Warm caches and grow every buffer to steady state.
	for i := 0; i < 3; i++ {
		seqOnce()
		parOnce()
	}

	const reps = 10
	sample := func(fn func()) time.Duration {
		start := time.Now()
		for i := 0; i < reps; i++ {
			fn()
		}
		return time.Since(start)
	}

	const floor = 0.98
	var speedup float64
	for attempt := 0; attempt < 5; attempt++ {
		minSeq, minPar := time.Duration(1<<62), time.Duration(1<<62)
		for s := 0; s < 6; s++ {
			if d := sample(seqOnce); d < minSeq {
				minSeq = d
			}
			if d := sample(parOnce); d < minPar {
				minPar = d
			}
		}
		speedup = float64(minSeq) / float64(minPar)
		if speedup >= floor {
			break
		}
	}
	if speedup < floor {
		t.Fatalf("workers=1 speedup vs sequential = %.3f, want >= %.2f (inline path regressed)", speedup, floor)
	}
	if got := folder.Spawned(); got != 0 {
		t.Fatalf("workers=1 timing folds spawned %d goroutines, want 0", got)
	}
}
