// Package parfold folds the registered object graph on a pool of workers and
// merges the result into a checkpoint body byte-identical to the sequential
// fold.
//
// The sequential drivers — the generic ckpt.Writer, reflectckpt, compiled
// spec plans, and generated specialized routines — all walk the roots one
// goroutine at a time. parfold partitions the roots into deterministic
// shards (stable assignment by checkpoint id), folds the shards concurrently
// into per-worker wire.Encoder buffers via headerless shard writers
// (ckpt.Writer.StartShard), and concatenates the per-root chunks in
// canonical id order under a single body header. Because each root's subtree
// encoding is independent of every other root's — the emitter frames records
// from a per-object scratch buffer — the merged body reproduces, byte for
// byte, what a sequential fold over the id-sorted roots would have written.
// Shard and worker counts influence scheduling only, never bytes.
//
// The fold is subject to the parallel memory-model contract documented in
// package ckpt: mutators quiescent, roots with disjoint subtrees. The
// internal/difftest harness replays recorded mutation traces through every
// engine sequentially and in parallel to prove the equivalence holds on the
// repo's workloads.
package parfold

import (
	"runtime"
	"sort"
	"sync"
	"sync/atomic"

	"ickpt/ckpt"
	"ickpt/wire"
)

// FoldFunc folds the subtree rooted at root into w, recording objects
// according to w's mode. The generic driver's fold is w.Checkpoint(root);
// the specialized engines provide their own (reflectckpt.ShardFold,
// spec.Plan.ShardFold, FoldEmitter for generated routines).
type FoldFunc func(w *ckpt.Writer, root ckpt.Checkpointable) error

// Generic returns the virtual-dispatch fold: the paper's Checkpoint driver.
func Generic() FoldFunc {
	return func(w *ckpt.Writer, root ckpt.Checkpointable) error {
		return w.Checkpoint(root)
	}
}

// FoldEmitter adapts a generated specialized checkpoint routine — a function
// from root object to emitter calls, as produced by cmd/ckptgen — into a
// FoldFunc. The routine must tolerate the writer's mode the caller folds in
// (generated routines are incremental-only).
func FoldEmitter(fn func(ckpt.Checkpointable, *ckpt.Emitter)) FoldFunc {
	return func(w *ckpt.Writer, root ckpt.Checkpointable) error {
		fn(root, w.Emitter())
		return nil
	}
}

// Sink accepts merged checkpoint bodies; *stablelog.AsyncWriter satisfies it,
// so a parallel fold can land its batch on the group-commit path and overlap
// the encoding of the next checkpoint with the fsync of this one.
type Sink interface {
	Append(mode ckpt.Mode, epoch uint64, body []byte) error
}

// ReserveSink is a Sink with a zero-copy handoff path (DESIGN.md decision
// 11): Reserve hands out a sink-owned encoder, Submit transfers it — and the
// body encoded into it — back without copying a byte, and Recycle returns an
// unused reservation to the sink's free list when the fold that was encoding
// into it aborts, so a failed epoch never leaks the buffer.
// *stablelog.AsyncWriter satisfies it. FoldTo detects the interface and
// routes the canonical merge straight into the reserved buffer: the
// per-worker shard chunks are concatenated into sink-owned storage (one copy
// total), and on the single-worker inline path the records are encoded into
// it directly (no copy at all).
type ReserveSink interface {
	Sink
	Reserve() *wire.Encoder
	Submit(mode ckpt.Mode, epoch uint64, enc *wire.Encoder) error
	Recycle(enc *wire.Encoder)
}

// Option configures a Folder.
type Option interface {
	apply(*Folder)
}

type optionFunc func(*Folder)

func (f optionFunc) apply(fo *Folder) { f(fo) }

// WithWorkers sets the number of fold goroutines. n <= 0 (the default) means
// runtime.GOMAXPROCS(0). Worker count never affects the merged bytes.
func WithWorkers(n int) Option {
	return optionFunc(func(fo *Folder) { fo.workers = n })
}

// WithShards sets the number of shards the roots are partitioned into; a
// shard is the unit of work a worker claims. n <= 0 (the default) means
// 4x the worker count, enough slack for shards of uneven weight to balance.
// A root with checkpoint id i always lands in shard i mod n — stable across
// runs — and shard count never affects the merged bytes.
func WithShards(n int) Option {
	return optionFunc(func(fo *Folder) { fo.shards = n })
}

// WithSession attaches a commit/abort session to the folder: each fold's
// merged clear-set (the modified flags the epoch's records cleared, gathered
// across all workers) is handed to s when the fold completes, pending until
// s.Commit or s.Abort; a failed fold aborts its epoch through s immediately,
// covering the shards that succeeded before the failure. Without a session
// the folder still re-marks cleared flags itself when a fold or a FoldTo
// sink fails, but cannot protect bodies handed to an asynchronous sink —
// pair the session with stablelog.WithAck(s.Ack) for that. See ckpt.Session.
func WithSession(s *ckpt.Session) Option {
	return optionFunc(func(fo *Folder) { fo.session = s })
}

// WithShadowCache enables sub-object delta records across the fold (see
// ckpt.WithDeltaEncoding): every worker writer shares c, so an object's
// payload is diffed against its previous epoch's shadow no matter which
// worker encodes it, and merged bodies stay byte-identical to a sequential
// delta-encoding fold. The folder stages the workers' shadow updates as one
// epoch batch and resolves it with the epoch — through the session when one
// is attached, at the next fold otherwise. A nil cache leaves deltas off.
func WithShadowCache(c *ckpt.ShadowCache) Option {
	return optionFunc(func(fo *Folder) { fo.shadow = c })
}

// Folder is a reusable parallel fold driver. Like ckpt.Writer it keeps an
// epoch counter and recycles its buffers; unlike the writer it may be handed
// roots in any order — chunks are merged in canonical (ascending id) order
// regardless.
//
// A Folder must not be used from multiple goroutines at once; it owns the
// goroutines it spawns.
type Folder struct {
	newFold func() FoldFunc
	workers int
	shards  int
	session *ckpt.Session

	epoch uint64
	out   wire.Encoder
	pool  []*worker

	// target, when non-nil, receives the next fold's body in place of the
	// folder's own merge buffer — FoldTo points it at a ReserveSink's
	// reserved encoder so the merge lands in sink-owned storage.
	target *wire.Encoder
	// lastLen is the previous merged body's length, the pre-size hint for
	// the per-worker shard buffers (f.out.Len() is stale when the previous
	// fold merged into a target).
	lastLen int

	// spawned counts fold goroutines launched over the folder's lifetime;
	// the degraded-to-sequential path (one effective worker, or
	// GOMAXPROCS=1) runs inline and leaves it untouched.
	spawned int

	// lastClears is the previous fold's merged clear-set when no session
	// holds it, kept so FoldTo can re-mark after a sink failure.
	lastClears []ckpt.ClearEntry

	// shadow, when non-nil, is the delta shadow cache shared by every worker
	// writer. shadowPend/shadowEpoch/shadowMode mirror lastClears for the
	// sessionless case: the staged batch stays pending until the next fold
	// implicitly commits it or a FoldTo sink failure aborts it.
	shadow      *ckpt.ShadowCache
	shadowPend  bool
	shadowEpoch uint64
	shadowMode  ckpt.Mode
}

// worker is the per-goroutine state, cached across folds so engines with
// warm-up cost (reflectckpt schema caches) keep their caches. Each worker
// encodes into an encoder drawn from the wire pool (wire.GetEncoder), so
// short-lived folders reuse grown shard buffers; Release returns them.
type worker struct {
	enc    *wire.Encoder
	wr     *ckpt.Writer
	fold   FoldFunc
	spans  []span
	clears []ckpt.ClearEntry
	stages []ckpt.ShadowStage
	err    error
}

// span locates one root's chunk inside a worker's shard body.
type span struct {
	pos        int // canonical position of the root
	start, end int // byte range in the worker's shard body
}

// New returns a Folder. newFold is called once per worker goroutine to
// produce that worker's fold closure, so engines with mutable per-fold state
// (reflectckpt) get an instance each; stateless or read-only engines may
// return a shared closure.
func New(newFold func() FoldFunc, opts ...Option) *Folder {
	f := &Folder{newFold: newFold}
	for _, o := range opts {
		o.apply(f)
	}
	return f
}

// NewGeneric returns a Folder driving the generic virtual-dispatch fold.
func NewGeneric(opts ...Option) *Folder {
	return New(Generic, opts...)
}

// Fold takes one checkpoint of roots in the given mode, advancing the
// folder's epoch (the first fold has epoch 1, like ckpt.Writer.Start). The
// returned body aliases the folder's buffer and is invalidated by the next
// fold; copy it if it must outlive the folder's reuse.
func (f *Folder) Fold(mode ckpt.Mode, roots []ckpt.Checkpointable) ([]byte, ckpt.Stats, error) {
	f.epoch++
	return f.FoldAt(mode, f.epoch, roots)
}

// FoldTo folds and hands the merged body to sink — typically a
// stablelog.AsyncWriter, whose Append copies the body and returns as soon as
// it is queued, so the next fold's encoding overlaps this body's write and
// group-commit fsync.
//
// A sink.Append error aborts the epoch: the flags its records cleared are
// re-marked (through the folder's session when one is attached). A nil
// return from an asynchronous sink means only "queued" — attach a session
// and wire the sink's acknowledgements to it (stablelog.WithAck(s.Ack)) so
// the epoch commits on durable fsync and aborts on a failed or dropped
// write.
func (f *Folder) FoldTo(sink Sink, mode ckpt.Mode, roots []ckpt.Checkpointable) (ckpt.Stats, error) {
	if zc, ok := sink.(ReserveSink); ok {
		enc := zc.Reserve()
		f.target = enc
		_, stats, err := f.Fold(mode, roots)
		f.target = nil
		if err != nil {
			// The fold aborted (and re-marked) already; the reservation must
			// go back to the sink's free list or the buffer leaks.
			zc.Recycle(enc)
			return stats, err
		}
		if err := zc.Submit(mode, f.epoch, enc); err != nil {
			// Submit reclaims the buffer on its own error path; only the
			// epoch needs aborting here.
			f.abortEpoch()
			return stats, err
		}
		return stats, nil
	}
	body, stats, err := f.Fold(mode, roots)
	if err != nil {
		return stats, err
	}
	if err := sink.Append(mode, f.epoch, body); err != nil {
		f.abortEpoch()
		return stats, err
	}
	return stats, nil
}

// abortEpoch aborts the epoch of the last successful fold after its body
// failed to reach the sink: through the session when one is attached,
// otherwise by re-marking the folder's retained clear-set.
func (f *Folder) abortEpoch() {
	if f.session != nil {
		f.session.Abort(f.epoch)
		return
	}
	ckpt.Remark(f.lastClears)
	ckpt.PutClearSet(f.lastClears)
	f.lastClears = nil
	if f.shadowPend {
		f.shadow.AbortEpoch(f.shadowEpoch)
		f.shadowPend = false
	}
}

// retireClears recycles the retained clear-set of the previous fold, which
// becomes unreachable for abortEpoch the moment a new fold starts. Retiring
// it before the workers' StartShard/StartAt lets their emitters draw the
// grown backing array back out of the pool, keeping the steady-state
// incremental fold free of the per-epoch clear-set growth cascade (the
// sessionless counterpart of Writer.Finish's putClears).
func (f *Folder) retireClears() {
	if f.lastClears != nil {
		ckpt.PutClearSet(f.lastClears)
		f.lastClears = nil
	}
	if f.shadowPend {
		// The previous fold's body survived to the start of this one: with
		// no session to say otherwise, it is treated as durable — the same
		// implicit commit the clear-set retirement above performs.
		f.shadow.CommitEpoch(f.shadowEpoch, f.shadowMode)
		f.shadowPend = false
	}
}

// FoldAt is Fold with an explicit epoch, for callers that interleave a
// folder with other writers of the same stream (the difftest harness pins
// sequential and parallel replays to the same epoch sequence). It also
// updates the folder's epoch, so a later Fold continues from epoch+1.
func (f *Folder) FoldAt(mode ckpt.Mode, epoch uint64, roots []ckpt.Checkpointable) ([]byte, ckpt.Stats, error) {
	f.epoch = epoch
	nw, ns := f.geometry()

	// Canonical order: ascending checkpoint id. The sequential reference is
	// a fold over the roots in this order. Roots that arrive already sorted
	// (ckpt.SortRoots, registration order) skip the sort — on the inline
	// path that keeps the fold free of per-epoch O(n log n) overhead the
	// sequential driver doesn't pay.
	ascending := true
	for i := 1; i < len(roots); i++ {
		if roots[i-1].CheckpointInfo().ID() > roots[i].CheckpointInfo().ID() {
			ascending = false
			break
		}
	}
	var order []int
	if !ascending {
		order = make([]int, len(roots))
		for i := range order {
			order[i] = i
		}
		sort.Slice(order, func(a, b int) bool {
			return roots[order[a]].CheckpointInfo().ID() < roots[order[b]].CheckpointInfo().ID()
		})
	}

	if nw == 1 {
		// One effective worker: encode the canonical sequence straight into
		// the output encoder — no shard buffers, no merge copy.
		return f.foldInline(mode, epoch, len(roots), func(w *worker, k int) error {
			if order != nil {
				k = order[k]
			}
			return w.fold(w.wr, roots[k])
		})
	}

	// Stable shard assignment: root id mod shard count. Within a shard the
	// canonical order is preserved, so a shard body is a contiguous run of
	// chunks only when ns == 1; in general the chunk table re-orders.
	shardItems := make([][]int, ns)
	if order != nil {
		for _, p := range order {
			s := int(roots[p].CheckpointInfo().ID() % uint64(ns))
			shardItems[s] = append(shardItems[s], p)
		}
	} else {
		for p := range roots {
			s := int(roots[p].CheckpointInfo().ID() % uint64(ns))
			shardItems[s] = append(shardItems[s], p)
		}
	}

	return f.foldShards(mode, epoch, nw, ns, len(roots), shardItems, order,
		func(w *worker, p int) error { return w.fold(w.wr, roots[p]) })
}

// FoldDirty takes one O(dirty) incremental checkpoint: it drains t's
// mark-queue (ckpt.Tracker.Take) and encodes the dirty set — no traversal —
// sharding it by id like FoldAt shards roots and merging in the same
// canonical ascending-id order, so the merged body is byte-identical to a
// sequential ckpt.Writer.CheckpointDirty over the same tracker with the same
// emit. The folder's epoch advances as in Fold.
//
// Callers are expected to consult t.NextMode first and fall back to a
// traversal Fold in Full mode (plus Tracker.Watch) when the tracker has
// degraded. On failure the un-recorded dirty objects are re-enqueued and the
// epoch aborted, exactly like CheckpointDirty.
func (f *Folder) FoldDirty(t *ckpt.Tracker, emit ckpt.EmitOne) ([]byte, ckpt.Stats, error) {
	f.epoch++
	return f.FoldDirtyAt(f.epoch, t, emit)
}

// FoldDirtyAt is FoldDirty with an explicit epoch (see FoldAt).
func (f *Folder) FoldDirtyAt(epoch uint64, t *ckpt.Tracker, emit ckpt.EmitOne) ([]byte, ckpt.Stats, error) {
	f.epoch = epoch
	objs := t.Take() // canonical ascending-id order already
	nw, ns := f.geometry()
	var (
		body  []byte
		stats ckpt.Stats
		err   error
	)
	if nw == 1 {
		body, stats, err = f.foldInline(ckpt.Incremental, epoch, len(objs), func(w *worker, k int) error {
			w.wr.Emitter().Visit()
			return emit(w.wr.Emitter(), objs[k])
		})
	} else {
		shardItems := make([][]int, ns)
		for p, o := range objs {
			s := int(o.CheckpointInfo().ID() % uint64(ns))
			shardItems[s] = append(shardItems[s], p)
		}
		body, stats, err = f.foldShards(ckpt.Incremental, epoch, nw, ns, len(objs), shardItems, nil,
			func(w *worker, p int) error {
				w.wr.Emitter().Visit()
				return emit(w.wr.Emitter(), objs[p])
			})
	}
	if err != nil {
		// Re-enqueue the dirty objects the failed epoch never recorded; the
		// recorded ones are re-marked (and re-enqueued) by the abort that
		// the fold already performed. Both are idempotent.
		t.Requeue(objs)
	}
	return body, stats, err
}

// geometry resolves the effective worker and shard counts. The fold degrades
// to one inline worker — no goroutines — when the configuration yields a
// single effective worker or the process has GOMAXPROCS=1, where a goroutine
// pool only adds scheduling overhead on top of the sequential fold.
func (f *Folder) geometry() (nw, ns int) {
	nw = f.workers
	if nw <= 0 {
		nw = runtime.GOMAXPROCS(0)
	}
	ns = f.shards
	if ns <= 0 {
		ns = 4 * nw
	}
	if nw > ns {
		nw = ns
	}
	if runtime.GOMAXPROCS(0) == 1 {
		nw = 1
	}
	return nw, ns
}

// outFor returns the encoder the current fold's merged body lands in: the
// FoldTo-reserved sink encoder when one is pending, the folder's own merge
// buffer otherwise.
func (f *Folder) outFor() *wire.Encoder {
	if f.target != nil {
		return f.target
	}
	return &f.out
}

// ensureWorkers grows the cached worker pool to at least n entries.
func (f *Folder) ensureWorkers(n int) {
	for len(f.pool) < n {
		enc := wire.GetEncoder()
		wr := ckpt.NewWriter(ckpt.WithEncoder(enc), ckpt.WithShadowCache(f.shadow))
		f.pool = append(f.pool, &worker{enc: enc, wr: wr, fold: f.newFold()})
	}
}

// foldInline is the single-worker fold: it encodes the canonical item
// sequence — header included, via Writer.StartAt — directly into the output
// encoder, producing the same bytes as the sharded merge without per-worker
// buffers, goroutines, or a merge copy. The worker's own pooled encoder is
// swapped out for the duration and restored before returning.
func (f *Folder) foldInline(mode ckpt.Mode, epoch uint64, nitems int, item func(*worker, int) error) ([]byte, ckpt.Stats, error) {
	f.retireClears()
	f.ensureWorkers(1)
	w := f.pool[0]
	out := f.outFor()
	w.wr.SwapEncoder(out)
	w.wr.StartAt(mode, epoch)
	var itemErr error
	for k := 0; k < nitems; k++ {
		if err := item(w, k); err != nil {
			itemErr = err
			break
		}
	}
	// Gather the clear-set (and staged shadows) before Finish consumes them:
	// the worker writer has no session, so the folder must observe or abort
	// the epoch itself, the same way the sharded path does at merge time.
	clears := w.wr.Emitter().TakeClears()
	stages := w.wr.Emitter().TakeShadowStages()
	_, stats, ferr := w.wr.Finish()
	w.wr.SwapEncoder(w.enc)
	if itemErr == nil && ferr != nil {
		itemErr = ferr
	}
	if itemErr != nil {
		f.lastClears = nil
		if f.shadow != nil {
			f.shadow.Discard(stages)
		}
		if f.session != nil {
			f.session.Observe(epoch, mode, clears)
			f.session.Abort(epoch)
		} else {
			ckpt.Remark(clears)
			ckpt.PutClearSet(clears)
		}
		return nil, ckpt.Stats{}, itemErr
	}
	stats.Bytes = out.Len()
	f.lastLen = out.Len()
	if f.shadow != nil {
		f.shadow.Stage(epoch, stages)
	}
	if f.session != nil {
		f.session.Observe(epoch, mode, clears)
		if f.shadow != nil {
			f.session.AttachShadow(epoch, f.shadow)
		}
		f.lastClears = nil
	} else {
		f.lastClears = clears
		if f.shadow != nil {
			f.shadowPend, f.shadowEpoch, f.shadowMode = true, epoch, mode
		}
	}
	return out.Bytes(), stats, nil
}

// foldShards is the engine shared by FoldAt and FoldDirtyAt: claim shards,
// fold each shard's items via item (recording spans), merge chunks in
// canonical order under one body header, and observe-or-abort the epoch's
// merged clear-set. mergeOrder gives the output order of item positions; nil
// means ascending positions (items pre-sorted).
func (f *Folder) foldShards(mode ckpt.Mode, epoch uint64, nw, ns, nitems int, shardItems [][]int, mergeOrder []int, item func(*worker, int) error) ([]byte, ckpt.Stats, error) {
	f.retireClears()
	f.ensureWorkers(nw)
	// Pre-size the shard buffers from the previous merged body: an even split
	// is the steady-state expectation, and growing up front turns the first
	// epochs' incremental reallocations into one.
	if hint := f.lastLen / nw; hint > 0 {
		for _, w := range f.pool[:nw] {
			w.enc.Grow(hint)
		}
	}

	chunks := make([][]byte, nitems)
	errs := make([]error, ns)
	var next atomic.Int64
	var failed atomic.Bool
	run := func(w *worker) {
		w.spans = w.spans[:0]
		w.err = nil
		w.wr.StartShard(mode, epoch)
		// Claim loop: once any shard has failed the epoch is doomed — its
		// body will be discarded — so stop claiming new shards rather than
		// burning CPU encoding records nobody will merge.
		for !failed.Load() {
			s := int(next.Add(1)) - 1
			if s >= ns {
				break
			}
			for _, p := range shardItems[s] {
				start := w.wr.BodyLen()
				if err := item(w, p); err != nil {
					errs[s] = err
					failed.Store(true)
					break
				}
				w.spans = append(w.spans, span{pos: p, start: start, end: w.wr.BodyLen()})
			}
		}
		// Gather the shard's clear-set and staged shadows before Finish
		// consumes them: the folder aborts or observes the whole epoch's
		// set, as one batch, at merge time.
		w.clears = w.wr.Emitter().TakeClears()
		w.stages = w.wr.Emitter().TakeShadowStages()
		body, _, err := w.wr.Finish()
		if err != nil {
			w.err = err
			return
		}
		for _, sp := range w.spans {
			chunks[sp.pos] = body[sp.start:sp.end]
		}
	}
	if nw == 1 {
		run(f.pool[0])
	} else {
		var wg sync.WaitGroup
		for wi := 0; wi < nw; wi++ {
			w := f.pool[wi]
			wg.Add(1)
			f.spawned++
			go func() {
				defer wg.Done()
				run(w)
			}()
		}
		wg.Wait()
	}

	// Merge the per-worker clear-sets: on failure the whole epoch —
	// including shards that folded cleanly — must be re-marked, because the
	// merged body is discarded as a unit. The merge target comes from the
	// clear-set pool and the per-worker sets go straight back into it, so
	// the next epoch's emitters (and the next merge) reuse the grown arrays
	// instead of re-paying the append cascade.
	clears := ckpt.GetClearSet()
	var stages []ckpt.ShadowStage
	for _, w := range f.pool[:nw] {
		clears = append(clears, w.clears...)
		ckpt.PutClearSet(w.clears)
		w.clears = nil
		stages = append(stages, w.stages...)
		w.stages = nil
	}

	// Error selection prefers the failure in the lowest shard among those
	// attempted. (Early stopping means later shards may never run, so which
	// failure is reported can vary with scheduling; that a failure is
	// reported — and the epoch aborted — is deterministic.)
	var foldErr error
	for _, err := range errs {
		if err != nil {
			foldErr = err
			break
		}
	}
	if foldErr == nil {
		for _, w := range f.pool[:nw] {
			if w.err != nil {
				foldErr = w.err
				break
			}
		}
	}
	if foldErr != nil {
		f.lastClears = nil
		if f.shadow != nil {
			f.shadow.Discard(stages)
		}
		if f.session != nil {
			f.session.Observe(epoch, mode, clears)
			f.session.Abort(epoch)
		} else {
			ckpt.Remark(clears)
			ckpt.PutClearSet(clears)
		}
		return nil, ckpt.Stats{}, foldErr
	}

	out := f.outFor()
	out.Reset()
	if f.shadow != nil {
		// Shard writers framed records with kind bytes, so the merged body
		// must carry the version-2 header — byte-identical to a sequential
		// delta-encoding fold.
		ckpt.AppendDeltaBodyHeader(out, mode, epoch)
	} else {
		ckpt.AppendBodyHeader(out, mode, epoch)
	}
	var stats ckpt.Stats
	for _, w := range f.pool[:nw] {
		st := w.wr.Emitter().Stats()
		st.Bytes = 0
		stats.Add(st)
	}
	// Merge the per-item chunks in canonical order; canonical positions map
	// 1:1 onto chunk-table slots via mergeOrder.
	if mergeOrder != nil {
		for _, p := range mergeOrder {
			out.Raw(chunks[p])
		}
	} else {
		for _, c := range chunks {
			out.Raw(c)
		}
	}
	stats.Bytes = out.Len()
	f.lastLen = out.Len()
	if f.shadow != nil {
		f.shadow.Stage(epoch, stages)
	}
	if f.session != nil {
		f.session.Observe(epoch, mode, clears)
		if f.shadow != nil {
			f.session.AttachShadow(epoch, f.shadow)
		}
		f.lastClears = nil
	} else {
		f.lastClears = clears
		if f.shadow != nil {
			f.shadowPend, f.shadowEpoch, f.shadowMode = true, epoch, mode
		}
	}
	return out.Bytes(), stats, nil
}

// Release returns the folder's pooled per-worker encoders to the wire pool
// and drops the worker pool; a later fold rebuilds it. Call it when the
// folder is done — after copying or persisting the last merged body, which
// remains valid (it lives in the folder's own merge buffer, not in a worker
// encoder).
func (f *Folder) Release() {
	f.retireClears()
	for _, w := range f.pool {
		wire.PutEncoder(w.enc)
	}
	f.pool = nil
}

// Epoch returns the epoch of the last fold (0 before the first).
func (f *Folder) Epoch() uint64 { return f.epoch }
