package parfold_test

import (
	"math/rand"
	"runtime"
	"testing"

	"ickpt/ckpt"
	"ickpt/ckpt/parfold"
	"ickpt/internal/synth"
)

// TestSteadyStateFoldClearSetRecycled pins the clear-set recycling of the
// sessionless fold paths: after warm-up, an incremental fold must not regrow
// its epoch clear-set (or its body buffer) every epoch. Before the fix, the
// folder took each epoch's clear-set out of the emitter and stranded it in
// lastClears without ever retiring it to the pool, so every fold re-paid the
// full append growth cascade — ~2.5x wall time on the dirty-set-heavy
// incremental cells of BENCH_parallel.json, the dominant part of the old
// "parallel fold loses at workers=1" regression. Mallocs are counted, not
// timed, so the test is immune to scheduler noise.
func TestSteadyStateFoldClearSetRecycled(t *testing.T) {
	prev := runtime.GOMAXPROCS(4)
	defer runtime.GOMAXPROCS(prev)

	cases := []struct {
		name    string
		workers int
		// budget is the per-fold malloc allowance after warm-up: the
		// inline path is allocation-free; the sharded path pays a fixed
		// ~45 mallocs for its per-fold chunk/err tables and shard
		// goroutines, a cost independent of the dirty-set size — unlike
		// the starved-pool cascade, which grows with it (30 mallocs /
		// 14 MB per fold at the benchmark's 20000 structures).
		budget uint64
	}{
		{"inline", 1, 2},
		{"sharded", 2, 64},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			w := synth.Build(synth.Shape{Structures: 300, ListLen: 4, Kind: synth.Ints10})
			drain(t, w)
			folder := parfold.NewGeneric(
				parfold.WithWorkers(tc.workers), parfold.WithShards(2*tc.workers))
			roots := w.Roots()
			mod := synth.ModPattern{Percent: 50, ModifiableLists: 3}
			rng := rand.New(rand.NewSource(7))

			fold := func() {
				w.Mutate(rng, mod)
				if _, _, err := folder.Fold(ckpt.Incremental, roots); err != nil {
					t.Fatalf("fold: %v", err)
				}
			}
			for i := 0; i < 3; i++ {
				fold()
			}
			var ms0, ms1 runtime.MemStats
			const rounds = 5
			runtime.ReadMemStats(&ms0)
			for i := 0; i < rounds; i++ {
				fold()
			}
			runtime.ReadMemStats(&ms1)
			perFold := (ms1.Mallocs - ms0.Mallocs) / rounds
			if perFold > tc.budget {
				t.Fatalf("steady-state incremental fold makes %d mallocs, want <= %d (clear-set pool starved?)",
					perFold, tc.budget)
			}
		})
	}
}
