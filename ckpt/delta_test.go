package ckpt_test

import (
	"bytes"
	"errors"
	"math/rand"
	"testing"

	"ickpt/ckpt"
	"ickpt/wire"
)

// Delta-encoding fixture: an object whose payload is a sizeable byte buffer,
// the shape sub-object delta encoding exists for.

var typeBlob = ckpt.TypeIDOf("ckpttest.blob")

type blob struct {
	info ckpt.Info
	data []byte
}

var _ ckpt.Restorable = (*blob)(nil)

func newBlob(d *ckpt.Domain, n int, seed int64) *blob {
	b := &blob{info: ckpt.NewInfo(d), data: make([]byte, n)}
	rand.New(rand.NewSource(seed)).Read(b.data)
	return b
}

func (b *blob) CheckpointInfo() *ckpt.Info    { return &b.info }
func (b *blob) CheckpointTypeID() ckpt.TypeID { return typeBlob }
func (b *blob) Record(e *wire.Encoder)        { e.BytesField(b.data) }
func (b *blob) Fold(*ckpt.Writer) error       { return nil }
func (b *blob) Restore(d *wire.Decoder, _ *ckpt.Resolver) error {
	b.data = append(b.data[:0], d.BytesField()...)
	return nil
}

// poke flips one byte and marks the blob modified.
func (b *blob) poke(i int) {
	b.data[i%len(b.data)] ^= 0x5a
	b.info.Mark()
}

func blobRegistry(t *testing.T) *ckpt.Registry {
	t.Helper()
	reg := ckpt.NewRegistry()
	reg.MustRegister("ckpttest.blob", func(id uint64) ckpt.Restorable {
		return &blob{info: ckpt.RestoredInfo(id)}
	})
	return reg
}

type blobTrace struct {
	bodies [][]byte
	final  map[uint64][]byte // id -> data after the last epoch
}

// runBlobTrace checkpoints a fixed mutation schedule over 8 blobs — one full
// epoch, five incrementals with two small mutations each — and returns the
// bodies plus the final object state. The schedule is deterministic, so two
// runs with equivalent writer configurations produce comparable streams.
func runBlobTrace(t *testing.T, opts ...ckpt.WriterOption) blobTrace {
	t.Helper()
	d := ckpt.NewDomain()
	blobs := make([]*blob, 8)
	for i := range blobs {
		blobs[i] = newBlob(d, 1024, int64(i))
	}
	w := ckpt.NewWriter(opts...)
	var tr blobTrace
	take := func(mode ckpt.Mode) {
		w.Start(mode)
		for _, b := range blobs {
			if err := w.Checkpoint(b); err != nil {
				t.Fatalf("Checkpoint: %v", err)
			}
		}
		body, _, err := w.Finish()
		if err != nil {
			t.Fatalf("Finish: %v", err)
		}
		tr.bodies = append(tr.bodies, append([]byte(nil), body...))
	}
	take(ckpt.Full)
	for e := 0; e < 5; e++ {
		blobs[e%len(blobs)].poke(37 * (e + 1))
		blobs[(e+3)%len(blobs)].poke(91*e + 5)
		take(ckpt.Incremental)
	}
	tr.final = make(map[uint64][]byte, len(blobs))
	for _, b := range blobs {
		tr.final[b.info.ID()] = append([]byte(nil), b.data...)
	}
	return tr
}

func rebuildBlobs(t *testing.T, bodies [][]byte) map[uint64]ckpt.Restorable {
	t.Helper()
	rb := ckpt.NewRebuilder(blobRegistry(t))
	for i, body := range bodies {
		if err := rb.Apply(body); err != nil {
			t.Fatalf("Apply body %d: %v", i, err)
		}
	}
	objs, err := rb.Build(nil)
	if err != nil {
		t.Fatalf("Build: %v", err)
	}
	return objs
}

func checkBlobs(t *testing.T, objs map[uint64]ckpt.Restorable, want map[uint64][]byte) {
	t.Helper()
	if len(objs) != len(want) {
		t.Fatalf("rebuilt %d objects, want %d", len(objs), len(want))
	}
	for id, data := range want {
		got, ok := objs[id].(*blob)
		if !ok {
			t.Fatalf("object %d missing or wrong type", id)
		}
		if !bytes.Equal(got.data, data) {
			t.Fatalf("object %d: rebuilt data differs from live state", id)
		}
	}
}

// TestDeltaWriterRoundTrip: a delta-encoding writer produces version-2 bodies
// that carry deltas for lightly-mutated payloads, shrink the incremental
// stream, and rebuild to exactly the state a plain writer's stream rebuilds
// to.
func TestDeltaWriterRoundTrip(t *testing.T) {
	delta := runBlobTrace(t, ckpt.WithDeltaEncoding(64))
	plain := runBlobTrace(t)

	deltaRecs, deltaBytes, plainBytes := 0, 0, 0
	for i, body := range delta.bodies {
		info, err := ckpt.InspectBodyKinds(body, nil)
		if err != nil {
			t.Fatalf("InspectBodyKinds body %d: %v", i, err)
		}
		if i == 0 {
			if info.Version != 2 || info.Deltas != 0 {
				t.Fatalf("full body: version=%d deltas=%d, want 2/0", info.Version, info.Deltas)
			}
			continue
		}
		if info.Deltas != info.Records {
			t.Errorf("incremental body %d: %d of %d records are deltas, want all", i, info.Deltas, info.Records)
		}
		deltaRecs += info.Deltas
		deltaBytes += len(body)
		plainBytes += len(plain.bodies[i])
	}
	if deltaRecs == 0 {
		t.Fatal("no delta records in the incremental stream")
	}
	if deltaBytes*4 > plainBytes {
		t.Fatalf("deltas saved too little: %d delta bytes vs %d plain bytes", deltaBytes, plainBytes)
	}

	checkBlobs(t, rebuildBlobs(t, delta.bodies), delta.final)
	checkBlobs(t, rebuildBlobs(t, plain.bodies), plain.final)
	for id := range delta.final {
		if !bytes.Equal(delta.final[id], plain.final[id]) {
			t.Fatalf("traces diverged at object %d", id)
		}
	}
}

// TestDeltaScratchMatchesZeroCopy: the scratch-copy and zero-copy encode
// paths make the same delta decisions from the same bytes, so their bodies
// are byte-identical.
func TestDeltaScratchMatchesZeroCopy(t *testing.T) {
	zc := runBlobTrace(t, ckpt.WithDeltaEncoding(64))
	sc := runBlobTrace(t, ckpt.WithDeltaEncoding(64), ckpt.WithScratchEncode())
	if len(zc.bodies) != len(sc.bodies) {
		t.Fatalf("body counts differ: %d vs %d", len(zc.bodies), len(sc.bodies))
	}
	for i := range zc.bodies {
		if !bytes.Equal(zc.bodies[i], sc.bodies[i]) {
			t.Fatalf("body %d differs between zero-copy and scratch encode", i)
		}
	}
}

// TestDeltaAbortKeepsCommittedBase: aborting an epoch leaves the shadow at
// the last committed payload, the next emit of the aborted object ships a
// full record, and the surviving bodies rebuild to the live state.
func TestDeltaAbortKeepsCommittedBase(t *testing.T) {
	d := ckpt.NewDomain()
	b := newBlob(d, 2048, 1)
	s := ckpt.NewSession()
	w := ckpt.NewWriter(ckpt.WithSession(s), ckpt.WithDeltaEncoding(64))
	cache := w.Shadow()
	if cache == nil {
		t.Fatal("WithDeltaEncoding left Shadow nil")
	}

	take := func(mode ckpt.Mode) []byte {
		t.Helper()
		w.Start(mode)
		if err := w.Checkpoint(b); err != nil {
			t.Fatalf("Checkpoint: %v", err)
		}
		body, _, err := w.Finish()
		if err != nil {
			t.Fatalf("Finish: %v", err)
		}
		return append([]byte(nil), body...)
	}
	deltas := func(body []byte) int {
		t.Helper()
		info, err := ckpt.InspectBodyKinds(body, nil)
		if err != nil {
			t.Fatalf("InspectBodyKinds: %v", err)
		}
		return info.Deltas
	}

	body1 := take(ckpt.Full)
	s.Commit(1)
	b.poke(10)
	body2 := take(ckpt.Incremental)
	s.Commit(2)
	if deltas(body2) != 1 {
		t.Fatal("epoch 2 did not delta against the committed full payload")
	}
	committed := cache.CommittedBase(b.info.ID())
	if committed == nil {
		t.Fatal("no committed base after epoch 2")
	}

	b.poke(20)
	body3 := take(ckpt.Incremental)
	if deltas(body3) != 1 {
		t.Fatal("epoch 3 did not delta")
	}
	s.Abort(3) // the sink lost the body; the session re-marks and the cache rolls back
	if got := cache.CommittedBase(b.info.ID()); got != nil {
		t.Fatalf("CommittedBase after abort = %d bytes, want nil (stale until restaged)", len(got))
	}
	if !b.info.Modified() {
		t.Fatal("abort did not re-mark the blob")
	}

	body4 := take(ckpt.Incremental)
	s.Commit(4)
	if deltas(body4) != 0 {
		t.Fatal("post-abort emit must ship a full record, not a delta against lost state")
	}
	if got := cache.CommittedBase(b.info.ID()); !bytes.Equal(got, committedAfter(b)) {
		t.Fatal("epoch 4 did not re-establish the shadow")
	}

	b.poke(30)
	body5 := take(ckpt.Incremental)
	s.Commit(5)
	if deltas(body5) != 1 {
		t.Fatal("epoch 5 did not resume delta encoding")
	}

	objs := rebuildBlobs(t, [][]byte{body1, body2, body4, body5})
	got := objs[b.info.ID()].(*blob)
	if !bytes.Equal(got.data, b.data) {
		t.Fatal("rebuilt state differs from live state after abort")
	}
}

// committedAfter returns the payload bytes a committed record of b carries.
func committedAfter(b *blob) []byte {
	var e wire.Encoder
	b.Record(&e)
	return e.Bytes()
}

// rawRec frames one version-2 record.
func rawRec(e *wire.Encoder, id uint64, kind byte, payload []byte) {
	e.Uvarint(id)
	e.Uvarint(uint64(typeBlob))
	e.Byte(kind)
	e.Uvarint(uint64(len(payload)))
	e.Raw(payload)
}

func rawBody(mode ckpt.Mode, epoch uint64, recs func(*wire.Encoder)) []byte {
	var e wire.Encoder
	ckpt.AppendDeltaBodyHeader(&e, mode, epoch)
	recs(&e)
	return append([]byte(nil), e.Bytes()...)
}

// TestRebuilderDeltaBase: Apply rejects deltas with no in-stream base, with a
// mismatched base, and deltas inside full bodies — all as ErrDeltaBase, and
// atomically (the rebuilder state is untouched).
func TestRebuilderDeltaBase(t *testing.T) {
	reg := blobRegistry(t)
	payA := make([]byte, 256)
	rand.New(rand.NewSource(2)).Read(payA)
	payB := append([]byte(nil), payA...)
	payB[7] ^= 0xff
	var de wire.Encoder
	if !wire.AppendDelta(&de, payA, payB, len(payB)) {
		t.Fatal("delta encode")
	}
	deltaAB := de.Bytes()

	full := rawBody(ckpt.Full, 1, func(e *wire.Encoder) { rawRec(e, 1, wire.KindFull, payA) })

	t.Run("no-base", func(t *testing.T) {
		rb := ckpt.NewRebuilder(reg)
		if err := rb.Apply(full); err != nil {
			t.Fatal(err)
		}
		bad := rawBody(ckpt.Incremental, 2, func(e *wire.Encoder) { rawRec(e, 2, wire.KindDelta, deltaAB) })
		if err := rb.Apply(bad); !errors.Is(err, ckpt.ErrDeltaBase) {
			t.Fatalf("Apply = %v, want ErrDeltaBase", err)
		}
		if rb.Objects() != 1 {
			t.Fatalf("failed Apply mutated state: %d objects", rb.Objects())
		}
	})

	t.Run("base-mismatch", func(t *testing.T) {
		rb := ckpt.NewRebuilder(reg)
		wrong := append([]byte(nil), payA...)
		wrong[0] ^= 1
		start := rawBody(ckpt.Full, 1, func(e *wire.Encoder) { rawRec(e, 1, wire.KindFull, wrong) })
		if err := rb.Apply(start); err != nil {
			t.Fatal(err)
		}
		inc := rawBody(ckpt.Incremental, 2, func(e *wire.Encoder) { rawRec(e, 1, wire.KindDelta, deltaAB) })
		if err := rb.Apply(inc); !errors.Is(err, ckpt.ErrDeltaBase) {
			t.Fatalf("Apply = %v, want ErrDeltaBase", err)
		}
	})

	t.Run("delta-in-full", func(t *testing.T) {
		rb := ckpt.NewRebuilder(reg)
		if err := rb.Apply(full); err != nil {
			t.Fatal(err)
		}
		bad := rawBody(ckpt.Full, 2, func(e *wire.Encoder) { rawRec(e, 1, wire.KindDelta, deltaAB) })
		if err := rb.Apply(bad); !errors.Is(err, ckpt.ErrDeltaBase) {
			t.Fatalf("Apply = %v, want ErrDeltaBase", err)
		}
	})

	t.Run("same-body-base", func(t *testing.T) {
		// A delta may base on a full record earlier in the same body.
		rb := ckpt.NewRebuilder(reg)
		if err := rb.Apply(full); err != nil {
			t.Fatal(err)
		}
		inc := rawBody(ckpt.Incremental, 2, func(e *wire.Encoder) {
			rawRec(e, 2, wire.KindFull, payA)
			rawRec(e, 2, wire.KindDelta, deltaAB)
		})
		if err := rb.Apply(inc); err != nil {
			t.Fatalf("Apply: %v", err)
		}
	})
}

// TestCheckDeltaCoherence mirrors the Apply-level rules at the run level,
// where stablelog replay and ckptinspect -verify run them without
// materializing anything.
func TestCheckDeltaCoherence(t *testing.T) {
	pay := make([]byte, 128)
	rand.New(rand.NewSource(3)).Read(pay)
	next := append([]byte(nil), pay...)
	next[5] ^= 2
	var de wire.Encoder
	if !wire.AppendDelta(&de, pay, next, len(next)) {
		t.Fatal("delta encode")
	}
	delta := de.Bytes()

	full := rawBody(ckpt.Full, 1, func(e *wire.Encoder) { rawRec(e, 1, wire.KindFull, pay) })
	good := rawBody(ckpt.Incremental, 2, func(e *wire.Encoder) { rawRec(e, 1, wire.KindDelta, delta) })
	orphan := rawBody(ckpt.Incremental, 2, func(e *wire.Encoder) { rawRec(e, 9, wire.KindDelta, delta) })

	if err := ckpt.CheckDeltaCoherence([][]byte{full, good}); err != nil {
		t.Fatalf("coherent run: %v", err)
	}
	if err := ckpt.CheckDeltaCoherence([][]byte{full, orphan}); !errors.Is(err, ckpt.ErrDeltaBase) {
		t.Fatalf("orphan delta: %v, want ErrDeltaBase", err)
	}
	// A second full checkpoint resets the known set: deltas across it are
	// incoherent even though the id appeared before it.
	if err := ckpt.CheckDeltaCoherence([][]byte{full, full, good}); err != nil {
		t.Fatalf("full reset keeps same-id base: %v", err)
	}
	refull := rawBody(ckpt.Full, 3, func(e *wire.Encoder) { rawRec(e, 2, wire.KindFull, pay) })
	if err := ckpt.CheckDeltaCoherence([][]byte{full, refull, good}); !errors.Is(err, ckpt.ErrDeltaBase) {
		t.Fatalf("delta across full reset: %v, want ErrDeltaBase", err)
	}
}

// TestRebuilderDeltaReapplyAllocs gates the steady-state replica loop: a
// same-size delta re-apply reuses the owned latest-payload buffer and the
// staged scratch map, allocating nothing per epoch.
func TestRebuilderDeltaReapplyAllocs(t *testing.T) {
	payA := make([]byte, 4096)
	rand.New(rand.NewSource(4)).Read(payA)
	payB := append([]byte(nil), payA...)
	for i := 0; i < 8; i++ {
		payB[i*500] ^= 0x3c
	}
	var eAB, eBA wire.Encoder
	if !wire.AppendDelta(&eAB, payA, payB, len(payB)) || !wire.AppendDelta(&eBA, payB, payA, len(payA)) {
		t.Fatal("delta encode")
	}
	full := rawBody(ckpt.Full, 1, func(e *wire.Encoder) { rawRec(e, 1, wire.KindFull, payA) })
	fwd := rawBody(ckpt.Incremental, 2, func(e *wire.Encoder) { rawRec(e, 1, wire.KindDelta, eAB.Bytes()) })
	back := rawBody(ckpt.Incremental, 3, func(e *wire.Encoder) { rawRec(e, 1, wire.KindDelta, eBA.Bytes()) })

	rb := ckpt.NewRebuilder(blobRegistry(t))
	if err := rb.Apply(full); err != nil {
		t.Fatal(err)
	}
	avg := testing.AllocsPerRun(50, func() {
		if err := rb.Apply(fwd); err != nil {
			t.Fatal(err)
		}
		if err := rb.Apply(back); err != nil {
			t.Fatal(err)
		}
	})
	if avg > 0 {
		t.Fatalf("steady-state delta re-apply allocates %.1f per epoch pair, want 0", avg)
	}
}
