package ckpt_test

import (
	"testing"

	"ickpt/ckpt"
)

// TestSlabStableAddresses pins the property the dirty index depends on:
// pointers handed out by New stay valid and distinct across block
// boundaries (a moved object would desynchronize Info.self adoption).
func TestSlabStableAddresses(t *testing.T) {
	var s ckpt.Slab[point]
	const n = 1000 // crosses several 256-object blocks
	ptrs := make([]*point, n)
	for i := range ptrs {
		ptrs[i] = s.New()
		ptrs[i].x = int64(i)
	}
	if s.Len() != n {
		t.Fatalf("Len = %d, want %d", s.Len(), n)
	}
	if s.Blocks() != (n+255)/256 {
		t.Fatalf("Blocks = %d, want %d", s.Blocks(), (n+255)/256)
	}
	seen := make(map[*point]bool, n)
	for i, p := range ptrs {
		if p.x != int64(i) {
			t.Fatalf("object %d: x = %d (block moved or reused?)", i, p.x)
		}
		if seen[p] {
			t.Fatalf("object %d: address handed out twice", i)
		}
		seen[p] = true
	}
}

// TestSlabTrackedObjects allocates Info-bearing objects from a slab,
// adopts them into a tracker, and drains a dirty fold: the slab composes
// with the full dirty-index protocol.
func TestSlabTrackedObjects(t *testing.T) {
	d, _, _, tr := trackedFixture(t, 4)
	var s ckpt.Slab[point]
	var borns []*point
	for i := 0; i < 300; i++ {
		p := s.New()
		p.info = ckpt.NewInfo(d)
		p.x = int64(i)
		d.Adopt(p)
		borns = append(borns, p)
	}
	taken := tr.Take()
	if tr.Degraded() {
		t.Fatal("slab-allocated adopted objects degraded the tracker")
	}
	if len(taken) != len(borns) {
		t.Fatalf("take = %d objects, want %d", len(taken), len(borns))
	}
}
