package ckpt

import (
	"bytes"
	"testing"
)

func stage1(c *ShadowCache, epoch, id uint64, payload []byte) {
	c.Stage(epoch, []ShadowStage{c.copyPayload(id, payload)})
}

func TestShadowDecideLifecycle(t *testing.T) {
	c := NewShadowCache(8)
	pay := bytes.Repeat([]byte{0x11, 0x22}, 32)

	if base, _, stage, _ := c.decide(1, 8, Incremental); base != nil || stage {
		t.Fatalf("payload at threshold: base=%v stage=%v, want nil/false", base, stage)
	}
	base, _, stage, _ := c.decide(1, len(pay), Incremental)
	if base != nil || !stage {
		t.Fatalf("first sighting: base=%v stage=%v, want nil/true", base, stage)
	}
	stage1(c, 7, 1, pay)

	// An in-flight pend serves as the base before its epoch commits: its body
	// precedes the next one in the stream.
	base, hash, stage, _ := c.decide(1, len(pay), Incremental)
	if !bytes.Equal(base, pay) || !stage {
		t.Fatalf("pend base: got %v/stage=%v", base, stage)
	}
	_ = hash
	c.CommitEpoch(7, Incremental)
	if got := c.CommittedBase(1); !bytes.Equal(got, pay) {
		t.Fatalf("CommittedBase after commit = %x, want staged payload", got)
	}

	// Full mode refreshes the shadow but never hands out a base.
	if base, _, stage, _ := c.decide(1, len(pay), Full); base != nil || !stage {
		t.Fatalf("full mode: base=%v stage=%v, want nil/true", base, stage)
	}

	// A resize cannot delta (aligned format) but re-establishes the shadow.
	if base, _, stage, _ := c.decide(1, len(pay)+8, Incremental); base != nil || !stage {
		t.Fatalf("resized payload: base=%v stage=%v, want nil/true", base, stage)
	}
}

func TestShadowAbortRestoresCommitted(t *testing.T) {
	c := NewShadowCache(0)
	p1 := bytes.Repeat([]byte{0xaa}, 48)
	p2 := bytes.Repeat([]byte{0xbb}, 48)

	stage1(c, 1, 9, p1)
	c.CommitEpoch(1, Full)
	stage1(c, 2, 9, p2)
	c.AbortEpoch(2)

	if got := c.CommittedBase(9); got != nil {
		t.Fatalf("CommittedBase after abort = %x, want nil (entry stale)", got)
	}
	// The committed bytes themselves must be untouched — only the staleness
	// bit guards them from serving as a base.
	if e := c.entries[9]; !bytes.Equal(e.committed, p1) || !e.stale || len(e.pend) != 0 {
		t.Fatalf("entry after abort: committed=%x stale=%v pends=%d", e.committed, e.stale, len(e.pend))
	}
	if base, _, stage, _ := c.decide(9, 48, Incremental); base != nil || !stage {
		t.Fatalf("post-abort decide: base=%v stage=%v, want nil/true", base, stage)
	}
	// The re-marked emit restages and the entry serves diffs again.
	stage1(c, 3, 9, p1)
	c.CommitEpoch(3, Incremental)
	if got := c.CommittedBase(9); !bytes.Equal(got, p1) {
		t.Fatalf("CommittedBase after restage = %x, want %x", got, p1)
	}
}

// TestShadowAbortDropsLaterPends: aborting an epoch also drops pends of later
// epochs (they were encoded against the lost payload, and a sticky sink
// failure aborts them too), never the earlier committed state.
func TestShadowAbortDropsLaterPends(t *testing.T) {
	c := NewShadowCache(0)
	p := func(b byte) []byte { return bytes.Repeat([]byte{b}, 32) }
	stage1(c, 1, 5, p(1))
	c.CommitEpoch(1, Full)
	stage1(c, 2, 5, p(2))
	stage1(c, 3, 5, p(3))
	c.AbortEpoch(2)
	if e := c.entries[5]; len(e.pend) != 0 || !bytes.Equal(e.committed, p(1)) {
		t.Fatalf("after abort of 2: pends=%d committed=%x", len(e.pend), e.committed)
	}
	// The dangling epoch-3 resolution must be harmless.
	c.AbortEpoch(3)
	c.CommitEpoch(3, Incremental)
}

// TestShadowStalePendNotServed: a pending shadow whose epoch is still
// unacked must stop serving as a diff base once the entry is staled by an
// unstaged superseding emit (a shrink below the floor, or a churn-window
// arming). The pend's bytes are no longer the object's latest payload in the
// durable stream — the unstaged full body is — so a delta against the pend
// would commit a record whose embedded base hash disagrees at recovery.
func TestShadowStalePendNotServed(t *testing.T) {
	t.Run("shrink", func(t *testing.T) {
		c := NewShadowCache(8)
		pay := bytes.Repeat([]byte{0xcd}, 64)
		stage1(c, 1, 3, pay) // epoch 1 stays in flight (unacked)

		// A sub-floor emit ships an unstaged full payload and stales the entry.
		if base, _, stage, _ := c.decide(3, 4, Incremental); base != nil || stage {
			t.Fatalf("shrink emit: base=%v stage=%v, want nil/false", base, stage)
		}
		if e := c.entries[3]; !e.stale || len(e.pend) != 1 {
			t.Fatalf("after shrink: stale=%v pends=%d, want true/1", e.stale, len(e.pend))
		}
		// The regrown emit must not diff against the outdated pend: full
		// payload, restage (which makes the entry serve again).
		base, _, stage, _ := c.decide(3, len(pay), Incremental)
		if base != nil || !stage {
			t.Fatalf("regrown emit served stale pend: base=%v stage=%v, want nil/true", base, stage)
		}
		stage1(c, 2, 3, pay)
		if base, _, _, _ := c.decide(3, len(pay), Incremental); !bytes.Equal(base, pay) {
			t.Fatalf("restaged pend not served: base=%v", base)
		}
	})
	t.Run("window", func(t *testing.T) {
		c := NewShadowCache(0)
		pay := bytes.Repeat([]byte{0xef}, 64)
		stage1(c, 1, 3, pay) // epoch 1 stays in flight (unacked)

		// Two losses arm the churn window, staling the entry while the pend's
		// epoch is unacked.
		c.report(3, false)
		if w := c.report(3, false); w == 0 {
			t.Fatal("two losses did not arm the skip window")
		}
		if base, _, stage, _ := c.decide(3, len(pay), Incremental); base != nil || !stage {
			t.Fatalf("probe emit served stale pend: base=%v stage=%v, want nil/true", base, stage)
		}
	})
}

func TestShadowChurnBackoff(t *testing.T) {
	c := NewShadowCache(0)
	pay := bytes.Repeat([]byte{7}, 64)
	stage1(c, 1, 2, pay)
	c.CommitEpoch(1, Full)

	if w := c.report(2, false); w != 0 {
		t.Fatalf("first loss armed a window of %d, want 0", w)
	}
	w := c.report(2, false) // missBackoff reached: skip window armed
	if w == 0 {
		t.Fatal("two losses did not arm the skip window")
	}
	// Arming stales the entry immediately: the window's emits ship full
	// payloads the shadow never sees, so the base must not serve until a
	// probe restages it.
	if got := c.CommittedBase(2); got != nil {
		t.Fatalf("CommittedBase during skip = %x, want nil", got)
	}
	// The emitter consumes the window from the object's Info without calling
	// back; it flushes the skipped-emit count once per epoch.
	c.addSkipped(w)
	if st := c.Stats(); st.SkippedEmits != w {
		t.Fatalf("SkippedEmits = %d, want %d", st.SkippedEmits, w)
	}
	// After the window drains, the probe emit finds a stale entry: full
	// payload, restage, no new window until the attempt's outcome is in.
	if base, _, stage, win := c.decide(2, len(pay), Incremental); base != nil || !stage || win != 0 {
		t.Fatalf("probe emit: base=%v stage=%v window=%d, want nil/true/0", base, stage, win)
	}
	// Continued losses double the window up to skipMax.
	prev := w
	for i := 0; i < 8; i++ {
		nw := c.report(2, false)
		if nw < prev || nw > skipMax {
			t.Fatalf("loss %d armed window %d (prev %d), want doubling capped at %d", i, nw, prev, skipMax)
		}
		prev = nw
	}
	if prev != skipMax {
		t.Fatalf("window after sustained losses = %d, want cap %d", prev, skipMax)
	}
	// A win resets the miss streak.
	c.report(2, true)
	if e := c.entries[2]; e.miss != 0 {
		t.Fatalf("miss streak after win = %d, want 0", e.miss)
	}
}

func TestShadowFullCommitPrunes(t *testing.T) {
	c := NewShadowCache(0)
	pay := bytes.Repeat([]byte{3}, 16)
	c.Stage(1, []ShadowStage{c.copyPayload(10, pay), c.copyPayload(11, pay)})
	c.CommitEpoch(1, Full)
	if c.Len() != 2 {
		t.Fatalf("Len = %d, want 2", c.Len())
	}
	// Object 11 is absent from the next full checkpoint: dead, pruned.
	stage1(c, 2, 10, pay)
	c.CommitEpoch(2, Full)
	if c.Len() != 1 || c.entries[11] != nil {
		t.Fatalf("full commit did not prune dead entry: Len=%d", c.Len())
	}
	if got := c.count.Load(); got != 1 {
		t.Fatalf("count after prune = %d, want 1", got)
	}
	// An empty full checkpoint prunes everything; count must follow so
	// decide's lock-free sub-floor fast path re-engages.
	c.Stage(3, nil)
	c.CommitEpoch(3, Full)
	if c.Len() != 0 || c.count.Load() != 0 {
		t.Fatalf("empty full commit: Len=%d count=%d, want 0/0", c.Len(), c.count.Load())
	}
}

func TestShadowSameEpochRestage(t *testing.T) {
	c := NewShadowCache(0)
	p1 := bytes.Repeat([]byte{1}, 24)
	p2 := bytes.Repeat([]byte{2}, 24)
	stage1(c, 4, 1, p1)
	stage1(c, 4, 1, p2) // retake under the same epoch: supersedes
	if e := c.entries[1]; len(e.pend) != 1 || !bytes.Equal(e.pend[0].buf, p2) {
		t.Fatalf("restage: pends=%d", len(c.entries[1].pend))
	}
	c.CommitEpoch(4, Incremental)
	if got := c.CommittedBase(1); !bytes.Equal(got, p2) {
		t.Fatalf("CommittedBase = %x, want %x", got, p2)
	}
}
