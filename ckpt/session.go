package ckpt

import "sync"

// This file implements the epoch commit/abort protocol that makes
// incremental checkpoints abort-safe.
//
// The incremental protocol clears an object's modified flag as the object is
// *encoded* (Emitter.Begin), on the assumption that the encoded body reaches
// stable storage. When it does not — a fold error mid-traversal, a sink
// failure, an asynchronous write dropped after a sticky log error — the
// cleared flags are a lost update: every later incremental checkpoint skips
// the objects, and recovery silently rebuilds a stale graph. The fix is a
// two-phase discipline: the emitter records every flag it clears into a
// per-epoch clear-set, and the epoch is either committed (the body is
// durable; drop the set) or aborted (re-mark every object in the set, so the
// next incremental checkpoint recaptures the lost state).

// ClearEntry records one modified flag cleared while encoding an epoch: the
// object's id and its Info at the time of the clear.
type ClearEntry struct {
	ID   uint64
	Info *Info
}

// Remark sets the modified flag of every object in clears — through Mark, so
// objects registered with a Tracker are re-enqueued into its mark-queue and
// an aborted epoch's dirty set is recaptured by the next dirty fold — and
// reports how many entries it covered. It is the raw re-marking primitive
// behind Session.Abort, used directly by drivers that fail an epoch without
// a session attached (Writer.Finish after a fold error, a parfold worker
// failure).
func Remark(clears []ClearEntry) int {
	n := 0
	for _, c := range clears {
		if c.Info != nil {
			c.Info.Mark()
			n++
		}
	}
	return n
}

// Clear-set recycling. Every epoch allocates a clear-set in Emitter.Begin
// and retires it at Commit/Abort; pooling the backing arrays (and the
// per-epoch box) makes the steady-state incremental loop allocation-free. A
// typed free list is used instead of sync.Pool because pooling a slice in
// sync.Pool boxes the slice header on every Put — an allocation on the very
// path being de-allocated.
var clearsPool struct {
	mu   sync.Mutex
	free [][]ClearEntry
	ecs  []*epochClears
}

// getClears returns an empty clear-set, reusing a retired backing array when
// one is available.
func getClears() []ClearEntry {
	clearsPool.mu.Lock()
	defer clearsPool.mu.Unlock()
	if n := len(clearsPool.free); n > 0 {
		c := clearsPool.free[n-1]
		clearsPool.free[n-1] = nil
		clearsPool.free = clearsPool.free[:n-1]
		return c
	}
	return nil
}

// GetClearSet returns an empty clear-set backed by a recycled array when one
// is available. It is the exported face of the epoch clear-set pool for fold
// drivers outside this package (parfold's merge step) that accumulate and
// hold clear-sets without a Session; pair it with PutClearSet, the way
// wire.GetEncoder pairs with wire.PutEncoder. Emitters draw from the same
// pool internally, so a driver that takes a clear-set (Emitter.TakeClears)
// and never retires it starves the pool and re-pays the append growth
// cascade every epoch.
func GetClearSet() []ClearEntry { return getClears() }

// PutClearSet retires a clear-set's backing array for reuse. The entries
// must be dead: the caller has committed the epoch, or re-marked the set via
// Remark. Safe on nil.
func PutClearSet(c []ClearEntry) { putClears(c) }

// putClears retires a clear-set's backing array for reuse. Safe on nil and
// on slices that did not come from the pool.
func putClears(c []ClearEntry) {
	if cap(c) == 0 {
		return
	}
	c = c[:0]
	clearsPool.mu.Lock()
	clearsPool.free = append(clearsPool.free, c)
	clearsPool.mu.Unlock()
}

func getEpochClears(mode Mode, clears []ClearEntry) *epochClears {
	clearsPool.mu.Lock()
	defer clearsPool.mu.Unlock()
	if n := len(clearsPool.ecs); n > 0 {
		ec := clearsPool.ecs[n-1]
		clearsPool.ecs[n-1] = nil
		clearsPool.ecs = clearsPool.ecs[:n-1]
		ec.mode, ec.clears = mode, clears
		return ec
	}
	return &epochClears{mode: mode, clears: clears}
}

func putEpochClears(ec *epochClears) {
	putClears(ec.clears)
	ec.clears = nil
	ec.shadow = nil
	ec.epoch = 0
	clearsPool.mu.Lock()
	clearsPool.ecs = append(clearsPool.ecs, ec)
	clearsPool.mu.Unlock()
}

// InfoResolver maps an object id to its current Info, or nil when the id no
// longer resolves (the object was freed or detached since the epoch was
// encoded). RootIndex.Resolve is the standard implementation.
type InfoResolver func(id uint64) *Info

// SessionStats counts protocol events over a session's lifetime.
type SessionStats struct {
	// Epochs counts epochs observed (clear-sets registered).
	Epochs int
	// Commits and Aborts count resolved epochs.
	Commits int
	Aborts  int
	// Remarked counts modified flags re-set by aborts.
	Remarked int
	// Unresolved counts clear-set entries no resolver could cover; each one
	// degrades the session to a forced Full checkpoint.
	Unresolved int
	// ForcedFull counts NextMode calls that upgraded a requested
	// Incremental checkpoint to Full because the session was degraded.
	ForcedFull int
}

// Session tracks the clear-sets of in-flight checkpoint epochs and resolves
// each epoch with Commit or Abort. It spans every engine: the generic
// Writer, reflectckpt, compiled spec plans, and generated routines all clear
// flags through Emitter.Begin, so one session protects them all, sequential
// or parallel (attach with WithSession on the Writer or parfold.WithSession
// on the Folder).
//
// The intended loop:
//
//	s := ckpt.NewSession()
//	w := ckpt.NewWriter(ckpt.WithSession(s))
//	...
//	w.Start(s.NextMode(ckpt.Incremental))
//	... fold ...
//	body, _, err := w.Finish()        // error: epoch already aborted
//	if err == nil {
//		if persist(body) == nil {  // or an async ack: stablelog.WithAck(s.Ack)
//			s.Commit(w.Epoch())
//		} else {
//			s.Abort(w.Epoch())
//		}
//	}
//
// Session is safe for concurrent use: acknowledgements may arrive from a
// background writer goroutine while the application encodes the next epoch.
type Session struct {
	mu       sync.Mutex
	resolver InfoResolver
	pending  map[uint64]*epochClears
	degraded bool
	stats    SessionStats
}

// epochClears is one in-flight epoch's clear-set, plus the delta shadow
// cache (if the writer has delta encoding enabled) whose staged payloads
// resolve in lockstep with it.
type epochClears struct {
	epoch  uint64
	mode   Mode
	clears []ClearEntry
	shadow *ShadowCache
}

// SessionOption configures a Session.
type SessionOption interface {
	applySession(*Session)
}

type sessionOptionFunc func(*Session)

func (f sessionOptionFunc) applySession(s *Session) { f(s) }

// WithInfoResolver makes Abort resolve clear-set ids through r instead of
// the Info pointers captured at encode time. Use it when aborted objects may
// have been freed or replaced between the failed epoch and the abort: a
// captured pointer would re-mark the stale Info, while a resolver re-marks
// the object now reachable under that id — and reports (by returning nil)
// the ids it cannot cover, degrading the session to a forced Full
// checkpoint. The resolver can be replaced at any time with SetResolver.
func WithInfoResolver(r InfoResolver) SessionOption {
	return sessionOptionFunc(func(s *Session) { s.resolver = r })
}

// NewSession returns an empty session.
func NewSession(opts ...SessionOption) *Session {
	s := &Session{pending: make(map[uint64]*epochClears)}
	for _, o := range opts {
		o.applySession(s)
	}
	return s
}

// SetResolver replaces the session's id resolver (nil reverts to captured
// Info pointers). Typically called just before an Abort, with a RootIndex
// built over the current roots.
func (s *Session) SetResolver(r InfoResolver) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.resolver = r
}

// Observe registers epoch's clear-set, leaving the epoch in-flight until
// Commit or Abort. Drivers call it when an epoch's body is complete (or when
// its fold has failed, immediately before aborting); applications using the
// Writer or Folder integration never call it directly.
//
// Observing an epoch that is already pending merges the clear-sets (a retake
// under the same epoch number after a partial failure).
func (s *Session) Observe(epoch uint64, mode Mode, clears []ClearEntry) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if ec, ok := s.pending[epoch]; ok {
		ec.clears = append(ec.clears, clears...)
		putClears(clears)
		return
	}
	ec := getEpochClears(mode, clears)
	ec.epoch = epoch
	s.pending[epoch] = ec
	s.stats.Epochs++
}

// AttachShadow ties a delta shadow cache to a pending epoch: the payloads
// the cache staged for that epoch are promoted when the epoch commits and
// dropped when it aborts, in lockstep with the clear-set. Writers with delta
// encoding enabled call it from Finish, right after Observe. If the epoch is
// not pending it has already resolved — as an abort, since no body was ever
// handed out — so the staged shadows are dropped immediately.
//
// Sticky-failure requirement: a sink driving a shadow-attached session must
// not commit an epoch after aborting an earlier one — once epoch E is lost,
// every later in-flight epoch must abort too. Later epochs may carry deltas
// encoded against E's payloads; committing one would put a delta in the
// durable stream whose base body never entered it, making recovery fail
// with ErrDeltaBase. stablelog.AsyncWriter satisfies this by construction
// (its first unrecovered error is sticky and fails all subsequent appends);
// a custom sink that can drop one body and persist the next must instead
// abort all in-flight epochs on the first failure (Session.AbortAll).
func (s *Session) AttachShadow(epoch uint64, c *ShadowCache) {
	if c == nil {
		return
	}
	s.mu.Lock()
	ec, ok := s.pending[epoch]
	if ok {
		ec.shadow = c
	}
	s.mu.Unlock()
	if !ok {
		c.AbortEpoch(epoch)
	}
}

// Commit resolves epoch as durable: its clear-set is dropped, and a
// committed Full checkpoint clears the session's degraded state (everything
// live is recaptured by a full body, so nothing can be stale). It reports
// whether the epoch was pending.
func (s *Session) Commit(epoch uint64) bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	ec, ok := s.pending[epoch]
	if !ok {
		return false
	}
	delete(s.pending, epoch)
	s.stats.Commits++
	if ec.mode == Full {
		s.degraded = false
	}
	if ec.shadow != nil {
		ec.shadow.CommitEpoch(ec.epoch, ec.mode)
	}
	putEpochClears(ec)
	return true
}

// Abort resolves epoch as lost: every object in its clear-set is re-marked
// so the next incremental checkpoint recaptures the state the discarded
// body carried. Entries are resolved through the session's InfoResolver
// when one is set; ids the resolver cannot cover are counted and degrade
// the session, so NextMode forces a Full checkpoint that recaptures
// everything live regardless. It returns the number of objects re-marked.
func (s *Session) Abort(epoch uint64) int {
	s.mu.Lock()
	defer s.mu.Unlock()
	ec, ok := s.pending[epoch]
	if !ok {
		return 0
	}
	delete(s.pending, epoch)
	return s.abortLocked(ec)
}

// AbortAll aborts every pending epoch — the teardown path after a sticky
// sink error, where no per-epoch acknowledgement will ever arrive. It
// returns the total number of objects re-marked.
func (s *Session) AbortAll() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	n := 0
	for epoch, ec := range s.pending {
		delete(s.pending, epoch)
		n += s.abortLocked(ec)
	}
	return n
}

// abortLocked re-marks one epoch's clear-set. The re-mark goes through Mark,
// so objects registered with a Tracker are re-enqueued and the aborted
// epoch's dirty set is recaptured by the next dirty fold. Callers hold s.mu.
func (s *Session) abortLocked(ec *epochClears) int {
	s.stats.Aborts++
	if ec.shadow != nil {
		ec.shadow.AbortEpoch(ec.epoch)
	}
	n := 0
	for _, c := range ec.clears {
		info := c.Info
		if s.resolver != nil {
			info = s.resolver(c.ID)
		}
		if info == nil {
			s.stats.Unresolved++
			s.degraded = true
			continue
		}
		info.Mark()
		n++
	}
	s.stats.Remarked += n
	putEpochClears(ec)
	return n
}

// Ack resolves epoch from a persistence acknowledgement: Commit on nil,
// Abort otherwise. Its signature matches stablelog's per-append callback,
// so a session rides the group-commit path directly:
//
//	aw := stablelog.NewAsyncWriter(log, stablelog.WithSyncEvery(8),
//		stablelog.WithAck(s.Ack))
func (s *Session) Ack(epoch uint64, err error) {
	if err == nil {
		s.Commit(epoch)
	} else {
		s.Abort(epoch)
	}
}

// Degraded reports whether an abort left state no resolver could cover, so
// that only a Full checkpoint restores the incremental invariant.
func (s *Session) Degraded() bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.degraded
}

// NextMode returns the mode the next checkpoint must use: want, upgraded to
// Full while the session is degraded. The degradation clears when a Full
// epoch commits.
func (s *Session) NextMode(want Mode) Mode {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.degraded && want != Full {
		s.stats.ForcedFull++
		return Full
	}
	return want
}

// Pending returns the number of in-flight epochs.
func (s *Session) Pending() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return len(s.pending)
}

// Stats returns a snapshot of the session's counters.
func (s *Session) Stats() SessionStats {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.stats
}

// RootIndex is an id→object index over the object graphs reachable from a
// set of roots: the resolution machinery shared by abort-time re-marking
// (Resolve as an InfoResolver) and by the dirty index (a Tracker's view is a
// RootIndex, resolving mark-queue ids to the objects a dirty fold encodes).
// Build it with IndexRoots immediately before use so it reflects the current
// graph.
type RootIndex struct {
	objs map[uint64]Checkpointable
}

// IndexRoots traverses the graphs reachable from roots — through the same
// Fold methods a checkpoint uses, without recording anything or touching
// any modified flag — and returns the id→object index.
func IndexRoots(roots ...Checkpointable) (*RootIndex, error) {
	w := NewWriter()
	w.collect = make(map[uint64]Checkpointable)
	w.Start(Full)
	for _, r := range roots {
		if err := w.Checkpoint(r); err != nil {
			return nil, err
		}
	}
	idx := &RootIndex{objs: w.collect}
	w.collect = nil
	w.started = false
	return idx, nil
}

// Resolve returns the Info of the object currently reachable under id, or
// nil. Its signature matches InfoResolver.
func (x *RootIndex) Resolve(id uint64) *Info {
	if o, ok := x.objs[id]; ok {
		return o.CheckpointInfo()
	}
	return nil
}

// Object returns the object currently reachable under id, or nil.
func (x *RootIndex) Object(id uint64) Checkpointable { return x.objs[id] }

// Len returns the number of indexed objects.
func (x *RootIndex) Len() int { return len(x.objs) }

// Each calls fn for every indexed object, in unspecified order.
func (x *RootIndex) Each(fn func(id uint64, o Checkpointable)) {
	for id, o := range x.objs {
		fn(id, o)
	}
}
