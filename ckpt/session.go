package ckpt

import "sync"

// This file implements the epoch commit/abort protocol that makes
// incremental checkpoints abort-safe.
//
// The incremental protocol clears an object's modified flag as the object is
// *encoded* (Emitter.Begin), on the assumption that the encoded body reaches
// stable storage. When it does not — a fold error mid-traversal, a sink
// failure, an asynchronous write dropped after a sticky log error — the
// cleared flags are a lost update: every later incremental checkpoint skips
// the objects, and recovery silently rebuilds a stale graph. The fix is a
// two-phase discipline: the emitter records every flag it clears into a
// per-epoch clear-set, and the epoch is either committed (the body is
// durable; drop the set) or aborted (re-mark every object in the set, so the
// next incremental checkpoint recaptures the lost state).

// ClearEntry records one modified flag cleared while encoding an epoch: the
// object's id and its Info at the time of the clear.
type ClearEntry struct {
	ID   uint64
	Info *Info
}

// Remark sets the modified flag of every object in clears and reports how
// many entries it covered. It is the raw re-marking primitive behind
// Session.Abort, used directly by drivers that fail an epoch without a
// session attached (Writer.Finish after a fold error, a parfold worker
// failure).
func Remark(clears []ClearEntry) int {
	n := 0
	for _, c := range clears {
		if c.Info != nil {
			c.Info.SetModified()
			n++
		}
	}
	return n
}

// InfoResolver maps an object id to its current Info, or nil when the id no
// longer resolves (the object was freed or detached since the epoch was
// encoded). RootIndex.Resolve is the standard implementation.
type InfoResolver func(id uint64) *Info

// SessionStats counts protocol events over a session's lifetime.
type SessionStats struct {
	// Epochs counts epochs observed (clear-sets registered).
	Epochs int
	// Commits and Aborts count resolved epochs.
	Commits int
	Aborts  int
	// Remarked counts modified flags re-set by aborts.
	Remarked int
	// Unresolved counts clear-set entries no resolver could cover; each one
	// degrades the session to a forced Full checkpoint.
	Unresolved int
	// ForcedFull counts NextMode calls that upgraded a requested
	// Incremental checkpoint to Full because the session was degraded.
	ForcedFull int
}

// Session tracks the clear-sets of in-flight checkpoint epochs and resolves
// each epoch with Commit or Abort. It spans every engine: the generic
// Writer, reflectckpt, compiled spec plans, and generated routines all clear
// flags through Emitter.Begin, so one session protects them all, sequential
// or parallel (attach with WithSession on the Writer or parfold.WithSession
// on the Folder).
//
// The intended loop:
//
//	s := ckpt.NewSession()
//	w := ckpt.NewWriter(ckpt.WithSession(s))
//	...
//	w.Start(s.NextMode(ckpt.Incremental))
//	... fold ...
//	body, _, err := w.Finish()        // error: epoch already aborted
//	if err == nil {
//		if persist(body) == nil {  // or an async ack: stablelog.WithAck(s.Ack)
//			s.Commit(w.Epoch())
//		} else {
//			s.Abort(w.Epoch())
//		}
//	}
//
// Session is safe for concurrent use: acknowledgements may arrive from a
// background writer goroutine while the application encodes the next epoch.
type Session struct {
	mu       sync.Mutex
	resolver InfoResolver
	pending  map[uint64]*epochClears
	degraded bool
	stats    SessionStats
}

// epochClears is one in-flight epoch's clear-set.
type epochClears struct {
	mode   Mode
	clears []ClearEntry
}

// SessionOption configures a Session.
type SessionOption interface {
	applySession(*Session)
}

type sessionOptionFunc func(*Session)

func (f sessionOptionFunc) applySession(s *Session) { f(s) }

// WithInfoResolver makes Abort resolve clear-set ids through r instead of
// the Info pointers captured at encode time. Use it when aborted objects may
// have been freed or replaced between the failed epoch and the abort: a
// captured pointer would re-mark the stale Info, while a resolver re-marks
// the object now reachable under that id — and reports (by returning nil)
// the ids it cannot cover, degrading the session to a forced Full
// checkpoint. The resolver can be replaced at any time with SetResolver.
func WithInfoResolver(r InfoResolver) SessionOption {
	return sessionOptionFunc(func(s *Session) { s.resolver = r })
}

// NewSession returns an empty session.
func NewSession(opts ...SessionOption) *Session {
	s := &Session{pending: make(map[uint64]*epochClears)}
	for _, o := range opts {
		o.applySession(s)
	}
	return s
}

// SetResolver replaces the session's id resolver (nil reverts to captured
// Info pointers). Typically called just before an Abort, with a RootIndex
// built over the current roots.
func (s *Session) SetResolver(r InfoResolver) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.resolver = r
}

// Observe registers epoch's clear-set, leaving the epoch in-flight until
// Commit or Abort. Drivers call it when an epoch's body is complete (or when
// its fold has failed, immediately before aborting); applications using the
// Writer or Folder integration never call it directly.
//
// Observing an epoch that is already pending merges the clear-sets (a retake
// under the same epoch number after a partial failure).
func (s *Session) Observe(epoch uint64, mode Mode, clears []ClearEntry) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if ec, ok := s.pending[epoch]; ok {
		ec.clears = append(ec.clears, clears...)
		return
	}
	s.pending[epoch] = &epochClears{mode: mode, clears: clears}
	s.stats.Epochs++
}

// Commit resolves epoch as durable: its clear-set is dropped, and a
// committed Full checkpoint clears the session's degraded state (everything
// live is recaptured by a full body, so nothing can be stale). It reports
// whether the epoch was pending.
func (s *Session) Commit(epoch uint64) bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	ec, ok := s.pending[epoch]
	if !ok {
		return false
	}
	delete(s.pending, epoch)
	s.stats.Commits++
	if ec.mode == Full {
		s.degraded = false
	}
	return true
}

// Abort resolves epoch as lost: every object in its clear-set is re-marked
// so the next incremental checkpoint recaptures the state the discarded
// body carried. Entries are resolved through the session's InfoResolver
// when one is set; ids the resolver cannot cover are counted and degrade
// the session, so NextMode forces a Full checkpoint that recaptures
// everything live regardless. It returns the number of objects re-marked.
func (s *Session) Abort(epoch uint64) int {
	s.mu.Lock()
	defer s.mu.Unlock()
	ec, ok := s.pending[epoch]
	if !ok {
		return 0
	}
	delete(s.pending, epoch)
	return s.abortLocked(ec)
}

// AbortAll aborts every pending epoch — the teardown path after a sticky
// sink error, where no per-epoch acknowledgement will ever arrive. It
// returns the total number of objects re-marked.
func (s *Session) AbortAll() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	n := 0
	for epoch, ec := range s.pending {
		delete(s.pending, epoch)
		n += s.abortLocked(ec)
	}
	return n
}

// abortLocked re-marks one epoch's clear-set. Callers hold s.mu.
func (s *Session) abortLocked(ec *epochClears) int {
	s.stats.Aborts++
	n := 0
	for _, c := range ec.clears {
		info := c.Info
		if s.resolver != nil {
			info = s.resolver(c.ID)
		}
		if info == nil {
			s.stats.Unresolved++
			s.degraded = true
			continue
		}
		info.SetModified()
		n++
	}
	s.stats.Remarked += n
	return n
}

// Ack resolves epoch from a persistence acknowledgement: Commit on nil,
// Abort otherwise. Its signature matches stablelog's per-append callback,
// so a session rides the group-commit path directly:
//
//	aw := stablelog.NewAsyncWriter(log, stablelog.WithSyncEvery(8),
//		stablelog.WithAck(s.Ack))
func (s *Session) Ack(epoch uint64, err error) {
	if err == nil {
		s.Commit(epoch)
	} else {
		s.Abort(epoch)
	}
}

// Degraded reports whether an abort left state no resolver could cover, so
// that only a Full checkpoint restores the incremental invariant.
func (s *Session) Degraded() bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.degraded
}

// NextMode returns the mode the next checkpoint must use: want, upgraded to
// Full while the session is degraded. The degradation clears when a Full
// epoch commits.
func (s *Session) NextMode(want Mode) Mode {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.degraded && want != Full {
		s.stats.ForcedFull++
		return Full
	}
	return want
}

// Pending returns the number of in-flight epochs.
func (s *Session) Pending() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return len(s.pending)
}

// Stats returns a snapshot of the session's counters.
func (s *Session) Stats() SessionStats {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.stats
}

// RootIndex is an id→Info index over the object graphs reachable from a set
// of roots, for resolving clear-set ids at abort time. Build it with
// IndexRoots immediately before the abort so it reflects the current graph.
type RootIndex struct {
	infos map[uint64]*Info
}

// IndexRoots traverses the graphs reachable from roots — through the same
// Fold methods a checkpoint uses, without recording anything or touching
// any modified flag — and returns the id→Info index.
func IndexRoots(roots ...Checkpointable) (*RootIndex, error) {
	w := NewWriter()
	w.collect = make(map[uint64]*Info)
	w.Start(Full)
	for _, r := range roots {
		if err := w.Checkpoint(r); err != nil {
			return nil, err
		}
	}
	idx := &RootIndex{infos: w.collect}
	w.collect = nil
	w.started = false
	return idx, nil
}

// Resolve returns the Info of the object currently reachable under id, or
// nil. Its signature matches InfoResolver.
func (x *RootIndex) Resolve(id uint64) *Info { return x.infos[id] }

// Len returns the number of indexed objects.
func (x *RootIndex) Len() int { return len(x.infos) }
