package ckpt

import (
	"fmt"
	"slices"

	"ickpt/wire"
)

// Rebuilder reconstructs object state from a sequence of checkpoint bodies:
// one base full checkpoint followed by any number of incremental bodies, in
// the order they were taken. It keeps, per object id, the most recent record
// payload; Build then materializes the object graph through a Registry.
//
// Rebuilder is not safe for concurrent use.
type Rebuilder struct {
	reg    *Registry
	latest map[uint64]record
	bodies [][]byte // retained so record payloads stay valid
	maxID  uint64
	seen   int // bodies applied
}

// NewRebuilder returns a Rebuilder resolving types through reg.
func NewRebuilder(reg *Registry) *Rebuilder {
	return &Rebuilder{
		reg:    reg,
		latest: make(map[uint64]record),
	}
}

// Apply folds one checkpoint body into the rebuilder. The body is retained
// (not copied); it must not be mutated afterwards.
//
// A Full body resets the state: objects absent from a full checkpoint are
// dead and must not resurface from older incrementals. The first body
// applied must be Full.
//
// Apply is atomic: a body that fails to parse or validate leaves the
// rebuilder exactly as it was, so recovery can skip a corrupt body (or a
// body that a transient read error garbled) and continue from intact state.
func (rb *Rebuilder) Apply(body []byte) error {
	d := wire.NewDecoder(body)
	h, err := parseBodyHeader(d)
	if err != nil {
		return fmt.Errorf("apply body: %w", err)
	}
	if rb.seen == 0 && h.mode != Full {
		return fmt.Errorf("%w: first body must be a full checkpoint", ErrBadBody)
	}
	// Decode and validate every record before touching any state.
	staged := make(map[uint64]record)
	for {
		rec, ok, err := nextRecord(d)
		if err != nil {
			return fmt.Errorf("apply body: %w", err)
		}
		if !ok {
			break
		}
		if rec.id == NilID {
			return fmt.Errorf("%w: record with nil id", ErrBadBody)
		}
		prev, found := staged[rec.id]
		if !found && h.mode != Full {
			// A full body resets the state, so conflicts against the old
			// generation do not apply.
			prev, found = rb.latest[rec.id]
		}
		if found && prev.typeID != rec.typeID {
			return fmt.Errorf("%w: object %d recorded as %q then %q",
				ErrTypeConflict, rec.id, rb.reg.Name(prev.typeID), rb.reg.Name(rec.typeID))
		}
		staged[rec.id] = rec
	}
	// Commit.
	if h.mode == Full {
		clear(rb.latest)
		rb.bodies = rb.bodies[:0]
		rb.maxID = 0
	}
	rb.bodies = append(rb.bodies, body)
	for id, rec := range staged {
		rb.latest[id] = rec
		if id > rb.maxID {
			rb.maxID = id
		}
	}
	rb.seen++
	return nil
}

// ApplyRun folds a sequence of checkpoint bodies into the rebuilder as one
// atomic unit: either every body applies, or the rebuilder is left exactly as
// it was. It is the replay primitive behind stablelog's rewind — a chain read
// from a retained log must never leave the rebuilder half-rewound when a
// later body turns out to be unreadable or corrupt.
//
// The bodies are staged into a scratch rebuilder (starting empty when the
// first body is Full, since a full checkpoint resets the state anyway) and
// swapped in only after the last one applies. An empty run is a no-op.
func (rb *Rebuilder) ApplyRun(bodies [][]byte) error {
	if len(bodies) == 0 {
		return nil
	}
	scratch := &Rebuilder{reg: rb.reg, latest: make(map[uint64]record)}
	if h, err := parseBodyHeader(wire.NewDecoder(bodies[0])); err != nil || h.mode != Full {
		// The run extends the current state rather than replacing it: stage
		// onto a copy so partial failure cannot leak into rb.
		for id, rec := range rb.latest {
			scratch.latest[id] = rec
		}
		scratch.bodies = append([][]byte(nil), rb.bodies...)
		scratch.maxID, scratch.seen = rb.maxID, rb.seen
	}
	for i, b := range bodies {
		if err := scratch.Apply(b); err != nil {
			return fmt.Errorf("apply body %d of %d: %w", i+1, len(bodies), err)
		}
	}
	*rb = *scratch
	return nil
}

// Objects returns the number of distinct object ids currently known.
func (rb *Rebuilder) Objects() int { return len(rb.latest) }

// MaxID returns the largest object id seen, for Domain.Advance.
func (rb *Rebuilder) MaxID() uint64 { return rb.maxID }

// Build materializes every known object: it creates a shell per id via the
// registered factories, then restores each shell's state, resolving child
// references through a Resolver. If d is non-nil it is advanced past the
// largest restored id.
//
// Objects are created and restored in ascending id order — never in Go map
// order — so a given set of bodies always builds (or fails) the same way.
//
// The returned map is keyed by object id.
func (rb *Rebuilder) Build(d *Domain) (map[uint64]Restorable, error) {
	ids := rb.sortedIDs()
	objs := make(map[uint64]Restorable, len(rb.latest))
	for _, id := range ids {
		rec := rb.latest[id]
		f, ok := rb.reg.factory(rec.typeID)
		if !ok {
			return nil, fmt.Errorf("%w: %d (object %d)", ErrUnknownType, rec.typeID, id)
		}
		o := f(id)
		if got := o.CheckpointInfo().ID(); got != id {
			return nil, fmt.Errorf("%w: factory for %q built object with id %d, want %d",
				ErrTypeConflict, rb.reg.Name(rec.typeID), got, id)
		}
		objs[id] = o
	}
	res := &Resolver{objects: objs}
	for _, id := range ids {
		rec := rb.latest[id]
		dec := wire.NewDecoder(rec.payload)
		if err := objs[id].Restore(dec, res); err != nil {
			return nil, fmt.Errorf("restore object %d (%s): %w", id, rb.reg.Name(rec.typeID), err)
		}
		if err := dec.Err(); err != nil {
			return nil, fmt.Errorf("restore object %d (%s): %w", id, rb.reg.Name(rec.typeID), err)
		}
	}
	if d != nil {
		d.Advance(rb.maxID)
	}
	return objs, nil
}

// sortedIDs returns the known object ids in ascending order.
func (rb *Rebuilder) sortedIDs() []uint64 {
	ids := make([]uint64, 0, len(rb.latest))
	for id := range rb.latest {
		ids = append(ids, id)
	}
	slices.Sort(ids)
	return ids
}

// Resolver resolves child ids to rebuilt objects during Restore.
type Resolver struct {
	objects map[uint64]Restorable
}

// Lookup returns the object with the given id. Looking up NilID returns
// (nil, nil): a recorded nil child reference.
func (r *Resolver) Lookup(id uint64) (Restorable, error) {
	if id == NilID {
		return nil, nil
	}
	o, ok := r.objects[id]
	if !ok {
		return nil, fmt.Errorf("%w: %d", ErrUnknownObject, id)
	}
	return o, nil
}

// ResolveAs looks up id and asserts the result to T. A nil id yields the
// zero T (a typed nil pointer) and no error.
func ResolveAs[T Restorable](r *Resolver, id uint64) (T, error) {
	var zero T
	o, err := r.Lookup(id)
	if err != nil || o == nil {
		return zero, err
	}
	v, ok := o.(T)
	if !ok {
		return zero, fmt.Errorf("%w: object %d has type %T", ErrTypeConflict, id, o)
	}
	return v, nil
}

// BodyInfo describes a parsed checkpoint body header; it is exposed for
// inspection tools.
type BodyInfo struct {
	Version byte
	Mode    Mode
	Epoch   uint64
	Records int
	Bytes   int
}

// InspectBody parses a body and returns its header information and a
// callback-driven record walk. fn may be nil to collect counts only.
func InspectBody(body []byte, fn func(id uint64, t TypeID, payload []byte) error) (BodyInfo, error) {
	d := wire.NewDecoder(body)
	h, err := parseBodyHeader(d)
	if err != nil {
		return BodyInfo{}, err
	}
	info := BodyInfo{Version: h.version, Mode: h.mode, Epoch: h.epoch, Bytes: len(body)}
	for {
		rec, ok, err := nextRecord(d)
		if err != nil {
			return info, err
		}
		if !ok {
			return info, nil
		}
		info.Records++
		if fn != nil {
			if err := fn(rec.id, rec.typeID, rec.payload); err != nil {
				return info, err
			}
		}
	}
}
