package ckpt

import (
	"errors"
	"fmt"
	"slices"

	"ickpt/wire"
)

// latestRec is the most recent payload known for one object id. owned marks
// a rebuilder-owned buffer (version-2 records are materialized into owned
// storage rather than aliasing the body), which a later same-size record may
// reuse in place instead of allocating.
type latestRec struct {
	typeID  TypeID
	payload []byte
	owned   bool
}

// stagedRec is one record staged during Apply's validation pass. payload
// aliases the body (the delta bytes, for kind wire.KindDelta) unless mat is
// set; base is the resolved diff base a delta was validated against.
type stagedRec struct {
	typeID  TypeID
	kind    byte
	payload []byte
	base    []byte
	mat     bool // payload is an already-materialized owned buffer
}

// Rebuilder reconstructs object state from a sequence of checkpoint bodies:
// one base full checkpoint followed by any number of incremental bodies, in
// the order they were taken. It keeps, per object id, the most recent record
// payload — materializing delta records (wire.KindDelta) against it as they
// arrive; Build then materializes the object graph through a Registry.
//
// Rebuilder is not safe for concurrent use.
type Rebuilder struct {
	reg    *Registry
	latest map[uint64]latestRec
	bodies [][]byte // retained so version-1 record payloads stay valid
	maxID  uint64
	seen   int // bodies applied

	// staged is Apply's validation-pass scratch, retained across calls so
	// the steady-state re-apply loop (a replica following a stream) stays
	// allocation-free.
	staged map[uint64]stagedRec
}

// NewRebuilder returns a Rebuilder resolving types through reg.
func NewRebuilder(reg *Registry) *Rebuilder {
	return &Rebuilder{
		reg:    reg,
		latest: make(map[uint64]latestRec),
	}
}

// Apply folds one checkpoint body into the rebuilder. A version-1 body is
// retained (not copied) — its record payloads are aliased and it must not be
// mutated afterwards. Version-2 (delta-enabled) bodies are not retained:
// every record, full or delta, is materialized into rebuilder-owned storage,
// reusing the object's previous buffer when the new payload fits.
//
// A Full body resets the state: objects absent from a full checkpoint are
// dead and must not resurface from older incrementals. The first body
// applied must be Full. A delta record must follow an earlier payload for
// the same object — in this body or a previous one — or Apply fails with
// ErrDeltaBase; a delta whose base hash disagrees with that payload fails
// the same way rather than materializing corrupt state.
//
// Apply is atomic: a body that fails to parse or validate leaves the
// rebuilder exactly as it was, so recovery can skip a corrupt body (or a
// body that a transient read error garbled) and continue from intact state.
func (rb *Rebuilder) Apply(body []byte) error {
	d := wire.NewDecoder(body)
	h, err := parseBodyHeader(d)
	if err != nil {
		return fmt.Errorf("apply body: %w", err)
	}
	if rb.seen == 0 && h.mode != Full {
		return fmt.Errorf("%w: first body must be a full checkpoint", ErrBadBody)
	}
	hasKind := h.version == bodyVersion2
	// Decode and validate every record before touching any state. Deltas
	// are fully validated here — structure, base length, base hash — so the
	// commit loop below cannot fail, which is what makes its in-place
	// materialization safe.
	if rb.staged == nil {
		rb.staged = make(map[uint64]stagedRec)
	}
	staged := rb.staged
	clear(staged)
	defer clear(staged) // drop body aliases either way
	for {
		rec, ok, err := nextRecord(d, hasKind)
		if err != nil {
			return fmt.Errorf("apply body: %w", err)
		}
		if !ok {
			break
		}
		if rec.id == NilID {
			return fmt.Errorf("%w: record with nil id", ErrBadBody)
		}
		prev, found := staged[rec.id]
		prevType, haveType := prev.typeID, found
		if !found && h.mode != Full {
			// A full body resets the state, so conflicts against the old
			// generation do not apply.
			if cur, ok := rb.latest[rec.id]; ok {
				prevType, haveType = cur.typeID, true
			}
		}
		if haveType && prevType != rec.typeID {
			return fmt.Errorf("%w: object %d recorded as %q then %q",
				ErrTypeConflict, rec.id, rb.reg.Name(prevType), rb.reg.Name(rec.typeID))
		}
		st := stagedRec{typeID: rec.typeID, kind: rec.kind, payload: rec.payload}
		if rec.kind == wire.KindDelta {
			if h.mode == Full {
				return fmt.Errorf("%w: object %d: delta record in a full checkpoint", ErrDeltaBase, rec.id)
			}
			var base []byte
			switch {
			case found:
				if prev.kind == wire.KindDelta && !prev.mat {
					// Two deltas for one object in one body: materialize
					// the first so the second has bytes to validate
					// against.
					buf := make([]byte, len(prev.base))
					wire.ApplyValidatedDelta(buf, prev.base, prev.payload)
					prev = stagedRec{typeID: prev.typeID, kind: wire.KindFull, payload: buf, mat: true}
				}
				base = prev.payload
			default:
				cur, ok := rb.latest[rec.id]
				if !ok {
					return fmt.Errorf("%w: object %d has no earlier payload in the stream", ErrDeltaBase, rec.id)
				}
				base = cur.payload
			}
			if _, err := wire.ValidateDelta(rec.payload, len(base), wire.DeltaBaseHash(base)); err != nil {
				if errors.Is(err, wire.ErrBaseMismatch) {
					return fmt.Errorf("%w: object %d: %v", ErrDeltaBase, rec.id, err)
				}
				return fmt.Errorf("%w: object %d: %v", ErrBadBody, rec.id, err)
			}
			st.base = base
		}
		staged[rec.id] = st
	}
	// Commit.
	if h.mode == Full {
		clear(rb.latest)
		rb.bodies = rb.bodies[:0]
		rb.maxID = 0
	}
	if !hasKind {
		rb.bodies = append(rb.bodies, body)
	}
	for id, st := range staged {
		rb.latest[id] = rb.commitRecord(id, st, hasKind)
		if id > rb.maxID {
			rb.maxID = id
		}
	}
	rb.seen++
	return nil
}

// commitRecord turns a validated staged record into the object's latest
// payload. Version-1 records alias the retained body; version-2 records are
// materialized into owned storage, reusing the object's existing owned
// buffer whenever the new payload fits its capacity — the steady-state
// same-size re-apply allocates nothing.
func (rb *Rebuilder) commitRecord(id uint64, st stagedRec, hasKind bool) latestRec {
	if !hasKind {
		return latestRec{typeID: st.typeID, payload: st.payload}
	}
	if st.mat {
		return latestRec{typeID: st.typeID, payload: st.payload, owned: true}
	}
	cur, exists := rb.latest[id]
	if st.kind == wire.KindDelta {
		n := len(st.base)
		var dst []byte
		if exists && cur.owned && cap(cur.payload) >= n {
			dst = cur.payload[:n]
		} else {
			dst = make([]byte, n)
		}
		if n > 0 {
			// dst may be st.base itself (the common consecutive-epoch
			// case); in-place application is safe because aligned deltas
			// only overwrite literal runs.
			wire.ApplyValidatedDelta(dst, st.base, st.payload)
		}
		return latestRec{typeID: st.typeID, payload: dst, owned: true}
	}
	n := len(st.payload)
	var dst []byte
	if exists && cur.owned && cap(cur.payload) >= n {
		dst = cur.payload[:n]
	} else {
		dst = make([]byte, n)
	}
	copy(dst, st.payload)
	return latestRec{typeID: st.typeID, payload: dst, owned: true}
}

// ApplyRun folds a sequence of checkpoint bodies into the rebuilder as one
// atomic unit: either every body applies, or the rebuilder is left exactly as
// it was. It is the replay primitive behind stablelog's rewind — a chain read
// from a retained log must never leave the rebuilder half-rewound when a
// later body turns out to be unreadable or corrupt.
//
// The bodies are staged into a scratch rebuilder (starting empty when the
// first body is Full, since a full checkpoint resets the state anyway) and
// swapped in only after the last one applies. An empty run is a no-op.
func (rb *Rebuilder) ApplyRun(bodies [][]byte) error {
	if len(bodies) == 0 {
		return nil
	}
	scratch := &Rebuilder{reg: rb.reg, latest: make(map[uint64]latestRec)}
	if h, err := parseBodyHeader(wire.NewDecoder(bodies[0])); err != nil || h.mode != Full {
		// The run extends the current state rather than replacing it: stage
		// onto a copy so partial failure cannot leak into rb. The copies are
		// marked un-owned: scratch must never materialize a delta in place
		// over a buffer rb still references.
		for id, rec := range rb.latest {
			rec.owned = false
			scratch.latest[id] = rec
		}
		scratch.bodies = append([][]byte(nil), rb.bodies...)
		scratch.maxID, scratch.seen = rb.maxID, rb.seen
	}
	for i, b := range bodies {
		if err := scratch.Apply(b); err != nil {
			return fmt.Errorf("apply body %d of %d: %w", i+1, len(bodies), err)
		}
	}
	*rb = *scratch
	return nil
}

// Objects returns the number of distinct object ids currently known.
func (rb *Rebuilder) Objects() int { return len(rb.latest) }

// MaxID returns the largest object id seen, for Domain.Advance.
func (rb *Rebuilder) MaxID() uint64 { return rb.maxID }

// Build materializes every known object: it creates a shell per id via the
// registered factories, then restores each shell's state, resolving child
// references through a Resolver. If d is non-nil it is advanced past the
// largest restored id.
//
// Objects are created and restored in ascending id order — never in Go map
// order — so a given set of bodies always builds (or fails) the same way.
//
// The returned map is keyed by object id.
func (rb *Rebuilder) Build(d *Domain) (map[uint64]Restorable, error) {
	ids := rb.sortedIDs()
	objs := make(map[uint64]Restorable, len(rb.latest))
	for _, id := range ids {
		rec := rb.latest[id]
		f, ok := rb.reg.factory(rec.typeID)
		if !ok {
			return nil, fmt.Errorf("%w: %d (object %d)", ErrUnknownType, rec.typeID, id)
		}
		o := f(id)
		if got := o.CheckpointInfo().ID(); got != id {
			return nil, fmt.Errorf("%w: factory for %q built object with id %d, want %d",
				ErrTypeConflict, rb.reg.Name(rec.typeID), got, id)
		}
		objs[id] = o
	}
	res := &Resolver{objects: objs}
	for _, id := range ids {
		rec := rb.latest[id]
		dec := wire.NewDecoder(rec.payload)
		if err := objs[id].Restore(dec, res); err != nil {
			return nil, fmt.Errorf("restore object %d (%s): %w", id, rb.reg.Name(rec.typeID), err)
		}
		if err := dec.Err(); err != nil {
			return nil, fmt.Errorf("restore object %d (%s): %w", id, rb.reg.Name(rec.typeID), err)
		}
	}
	if d != nil {
		d.Advance(rb.maxID)
	}
	return objs, nil
}

// sortedIDs returns the known object ids in ascending order.
func (rb *Rebuilder) sortedIDs() []uint64 {
	ids := make([]uint64, 0, len(rb.latest))
	for id := range rb.latest {
		ids = append(ids, id)
	}
	slices.Sort(ids)
	return ids
}

// Resolver resolves child ids to rebuilt objects during Restore.
type Resolver struct {
	objects map[uint64]Restorable
}

// Lookup returns the object with the given id. Looking up NilID returns
// (nil, nil): a recorded nil child reference.
func (r *Resolver) Lookup(id uint64) (Restorable, error) {
	if id == NilID {
		return nil, nil
	}
	o, ok := r.objects[id]
	if !ok {
		return nil, fmt.Errorf("%w: %d", ErrUnknownObject, id)
	}
	return o, nil
}

// ResolveAs looks up id and asserts the result to T. A nil id yields the
// zero T (a typed nil pointer) and no error.
func ResolveAs[T Restorable](r *Resolver, id uint64) (T, error) {
	var zero T
	o, err := r.Lookup(id)
	if err != nil || o == nil {
		return zero, err
	}
	v, ok := o.(T)
	if !ok {
		return zero, fmt.Errorf("%w: object %d has type %T", ErrTypeConflict, id, o)
	}
	return v, nil
}

// BodyInfo describes a parsed checkpoint body header; it is exposed for
// inspection tools.
type BodyInfo struct {
	Version byte
	Mode    Mode
	Epoch   uint64
	Records int
	Deltas  int // records of kind wire.KindDelta (version-2 bodies only)
	Bytes   int
}

// InspectBody parses a body and returns its header information and a
// callback-driven record walk. fn may be nil to collect counts only. For a
// delta record the callback receives the raw delta bytes, not the
// materialized payload; use InspectBodyKinds to tell the two apart.
func InspectBody(body []byte, fn func(id uint64, t TypeID, payload []byte) error) (BodyInfo, error) {
	if fn == nil {
		return InspectBodyKinds(body, nil)
	}
	return InspectBodyKinds(body, func(id uint64, t TypeID, _ byte, payload []byte) error {
		return fn(id, t, payload)
	})
}

// InspectBodyKinds is InspectBody with the record kind (wire.KindFull or
// wire.KindDelta) exposed to the callback. For kind wire.KindDelta, payload
// is the delta op stream; wire.DeltaLen recovers the materialized size.
func InspectBodyKinds(body []byte, fn func(id uint64, t TypeID, kind byte, payload []byte) error) (BodyInfo, error) {
	d := wire.NewDecoder(body)
	h, err := parseBodyHeader(d)
	if err != nil {
		return BodyInfo{}, err
	}
	info := BodyInfo{Version: h.version, Mode: h.mode, Epoch: h.epoch, Bytes: len(body)}
	for {
		rec, ok, err := nextRecord(d, h.version == bodyVersion2)
		if err != nil {
			return info, err
		}
		if !ok {
			return info, nil
		}
		info.Records++
		if rec.kind == wire.KindDelta {
			info.Deltas++
		}
		if fn != nil {
			if err := fn(rec.id, rec.typeID, rec.kind, rec.payload); err != nil {
				return info, err
			}
		}
	}
}

// CheckDeltaCoherence verifies that every delta record in a run of bodies
// has an in-run base: an earlier record for the same object, with nothing
// but incrementals between them. Full bodies reset the known set (and may
// not carry deltas at all). It is cheap — structure only, no hash checks or
// materialization — and is run by stablelog replay and ckptinspect -verify
// before Rebuilder.Apply commits to a chain, so a truncated or mis-anchored
// run fails with ErrDeltaBase up front instead of mid-rebuild.
//
// Runs with no version-2 body are vacuously coherent and return nil without
// decoding records.
func CheckDeltaCoherence(bodies [][]byte) error {
	hasV2 := false
	for _, b := range bodies {
		if len(b) > 0 && b[0] == bodyVersion2 {
			hasV2 = true
			break
		}
	}
	if !hasV2 {
		return nil
	}
	have := make(map[uint64]struct{})
	for i, body := range bodies {
		d := wire.NewDecoder(body)
		h, err := parseBodyHeader(d)
		if err != nil {
			return fmt.Errorf("body %d: %w", i+1, err)
		}
		if h.mode == Full {
			clear(have)
		}
		for {
			rec, ok, err := nextRecord(d, h.version == bodyVersion2)
			if err != nil {
				return fmt.Errorf("body %d: %w", i+1, err)
			}
			if !ok {
				break
			}
			if rec.kind == wire.KindDelta {
				if h.mode == Full {
					return fmt.Errorf("body %d: %w: object %d: delta record in a full checkpoint", i+1, ErrDeltaBase, rec.id)
				}
				if _, ok := have[rec.id]; !ok {
					return fmt.Errorf("body %d: %w: object %d has no earlier payload in the run", i+1, ErrDeltaBase, rec.id)
				}
			}
			have[rec.id] = struct{}{}
		}
	}
	return nil
}
