package ckpt

// NilID is the reserved object id meaning "no object". Child references
// encode NilID for nil pointers; Domains never issue it.
const NilID uint64 = 0

// Info holds the per-object checkpoint metadata: a unique identifier, the
// modified flag used by incremental checkpointing, and — when the object
// lives under a Tracker — the dirty-index bookkeeping that lets an
// incremental epoch fold only the modified objects.
//
// Info corresponds to the paper's CheckpointInfo class. A new object's flag
// starts set, so the object is captured by the next incremental checkpoint.
// Info is not safe for concurrent use.
type Info struct {
	id       uint64
	modified bool

	// shadowSkip is the remaining length of a shadow-cache churn backoff
	// window (see ShadowCache): while nonzero, a delta-enabled emitter
	// ships this object's payload whole without consulting the cache,
	// decrementing per emit. The report that arms the window stales the
	// cache entry up front, so the window's full-payload emits cannot
	// leave a poisoned diff base behind. The counter lives here rather
	// than in the cache so the backed-off steady state costs one load and
	// one store per emit instead of the cache's lock and map lookup; like
	// the modified flag, it is only ever touched by the one writer (or
	// parallel-fold shard) that owns the object's records.
	shadowSkip uint16

	// queued reports whether this object is already in its tracker's
	// mark-queue, so repeated Marks between two checkpoints enqueue once.
	queued bool
	// fresh reports an allocation the tracker's view has not absorbed yet
	// (counted in Tracker.fresh); Watch or Track settles it.
	fresh bool
	// tracker is the dirty index this object reports to, nil when untracked.
	tracker *Tracker
	// self is set to the Info's own address when the owning object is
	// registered (adopted) into a tracker's view. A by-value copy of an
	// adopted object therefore carries a self pointer that does not match its
	// own address, which is how Take's scan path rejects copies without
	// sweeping the mark-queue.
	self *Info
}

// NewInfo issues a fresh identifier from d and returns an Info with the
// modified flag set. If a Tracker is attached to the domain
// (Domain.AttachTracker), the fresh object is tagged with it and counted as
// an unsettled allocation: until Tracker.Watch or Tracker.Track registers
// the object, the tracker's dirty set may be incomplete, so it degrades the
// next Take to a full traversal — the conservative answer for an object the
// dirty index cannot see. (NewInfo cannot enqueue the object itself: the
// returned Info is copied into its owner, so a pointer captured here would
// dangle.)
func NewInfo(d *Domain) Info {
	i := Info{id: d.next(), modified: true}
	if d.tracker != nil {
		i.tracker = d.tracker
		i.fresh = true
		d.tracker.fresh++
	}
	return i
}

// RestoredInfo returns an Info carrying a previously-issued identifier, for
// use by Registry factories when rebuilding objects from a checkpoint. The
// modified flag starts clear: restored state is by definition already
// captured.
func RestoredInfo(id uint64) Info {
	return Info{id: id}
}

// ID returns the object's unique identifier.
func (i *Info) ID() uint64 { return i.id }

// Modified reports whether the object has been modified since it was last
// recorded in a checkpoint.
func (i *Info) Modified() bool { return i.modified }

// SetModified sets the raw modified flag without informing any tracker.
// Prefer Mark: a direct flag store bypasses the dirty index, so an O(dirty)
// incremental epoch would silently omit the object (the ckptvet dirtywrite
// analyzer reports SetModified calls outside this package for exactly that
// reason). SetModified remains for flag maintenance that must not enqueue.
func (i *Info) SetModified() { i.modified = true }

// Mark is the write barrier: it sets the modified flag and, when the object
// is registered with a Tracker, enqueues it into the tracker's mark-queue so
// the next dirty fold captures it. Marking an already-queued object is a
// no-op beyond the flag, so repeated writes between two checkpoints cost one
// queue slot.
func (i *Info) Mark() {
	i.modified = true
	if i.tracker != nil && !i.queued {
		i.queued = true
		i.tracker.enqueue(i)
	}
}

// MarkOn registers the object with t and marks it: the registration path for
// objects whose Domain has no tracker attached (restored graphs, hand-built
// fixtures). The object must still be in the tracker's view by the next Take
// — via Watch or Track — or the tracker conservatively degrades to a full
// traversal.
func (i *Info) MarkOn(t *Tracker) {
	i.tracker = t
	i.Mark()
}

// ResetModified clears the modified flag. The Writer calls this as it
// records an object; user code rarely needs it.
//
// Clearing the flag also retires the object's mark-queue entry, if any: the
// entry would be stale (a dirty fold must not emit a clean object), so the
// queued bit is dropped — a later Mark simply re-enqueues — and the
// tracker's live-entry count is decremented. The count is what lets Take's
// scan path verify the dirty set without sweeping the queue. The decrement
// is atomic because a parallel fold's workers reset flags concurrently.
func (i *Info) ResetModified() {
	i.modified = false
	if i.queued {
		i.queued = false
		if i.tracker != nil {
			i.tracker.liveQueued.Add(-1)
		}
	}
}

// Domain issues unique object identifiers. The paper uses a static counter;
// a Domain scopes the counter to one checkpointed universe so that programs
// and tests can run several universes independently.
//
// Domain is not safe for concurrent use.
type Domain struct {
	last    uint64
	tracker *Tracker
}

// AttachTracker makes every Info the domain issues from now on report to t:
// new objects are tagged with the tracker and counted as unsettled
// allocations until Watch, Track, or Adopt registers them (see NewInfo).
// Attach nil to detach.
func (d *Domain) AttachTracker(t *Tracker) { d.tracker = t }

// Adopt registers a freshly allocated object with the tracker attached to
// the domain, settling the fresh-allocation debt NewInfo charged. Without
// it, a single allocation between two checkpoints forces the attached
// tracker's next Take — and therefore the whole epoch — to degrade to a Full
// traversal: the conservative answer for an object the dirty index cannot
// see. Calling Adopt at the allocation site, before the object can be marked
// or copied, keeps churning workloads (an interpreter allocating
// environments and cons cells every step) on the O(dirty) incremental path:
// the newborn joins the view with its identity intact (its embedded Info is
// the one every future Mark will enqueue) and, being born modified, is
// queued for the next dirty fold immediately.
//
// With no tracker attached Adopt is a no-op, so allocation sites can call it
// unconditionally.
func (d *Domain) Adopt(o Checkpointable) {
	if d.tracker != nil {
		d.tracker.Track(o)
	}
}

// NewDomain returns a Domain whose first issued id is 1 (NilID is reserved).
func NewDomain() *Domain { return &Domain{} }

func (d *Domain) next() uint64 {
	d.last++
	return d.last
}

// Last returns the most recently issued id, or NilID if none has been issued.
func (d *Domain) Last() uint64 { return d.last }

// Advance ensures that future ids are strictly greater than id. It is used
// after rebuilding state from a checkpoint so that newly allocated objects do
// not collide with restored ones.
func (d *Domain) Advance(id uint64) {
	if id > d.last {
		d.last = id
	}
}

// Cell is a tracked field: a value whose Set marks the owning object's Info
// as modified. It stands in for the write barriers that the paper's
// preprocessor would insert into Java setters.
//
// Read with Get (or the exported V field); write with Set so the dirty bit
// is maintained.
type Cell[T any] struct {
	// V is the current value. Prefer Set for writes; direct assignment
	// bypasses modification tracking.
	V T
}

// Get returns the current value.
func (c *Cell[T]) Get() T { return c.V }

// Set stores v and marks owner as modified (through Mark, so a tracker
// attached to the owner sees the write).
func (c *Cell[T]) Set(owner *Info, v T) {
	c.V = v
	owner.Mark()
}
