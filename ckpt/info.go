package ckpt

// NilID is the reserved object id meaning "no object". Child references
// encode NilID for nil pointers; Domains never issue it.
const NilID uint64 = 0

// Info holds the per-object checkpoint metadata: a unique identifier and the
// modified flag used by incremental checkpointing.
//
// Info corresponds to the paper's CheckpointInfo class. A new object's flag
// starts set, so the object is captured by the next incremental checkpoint.
// Info is not safe for concurrent use.
type Info struct {
	id       uint64
	modified bool
}

// NewInfo issues a fresh identifier from d and returns an Info with the
// modified flag set.
func NewInfo(d *Domain) Info {
	return Info{id: d.next(), modified: true}
}

// RestoredInfo returns an Info carrying a previously-issued identifier, for
// use by Registry factories when rebuilding objects from a checkpoint. The
// modified flag starts clear: restored state is by definition already
// captured.
func RestoredInfo(id uint64) Info {
	return Info{id: id}
}

// ID returns the object's unique identifier.
func (i *Info) ID() uint64 { return i.id }

// Modified reports whether the object has been modified since it was last
// recorded in a checkpoint.
func (i *Info) Modified() bool { return i.modified }

// SetModified marks the object as modified.
func (i *Info) SetModified() { i.modified = true }

// ResetModified clears the modified flag. The Writer calls this as it
// records an object; user code rarely needs it.
func (i *Info) ResetModified() { i.modified = false }

// Domain issues unique object identifiers. The paper uses a static counter;
// a Domain scopes the counter to one checkpointed universe so that programs
// and tests can run several universes independently.
//
// Domain is not safe for concurrent use.
type Domain struct {
	last uint64
}

// NewDomain returns a Domain whose first issued id is 1 (NilID is reserved).
func NewDomain() *Domain { return &Domain{} }

func (d *Domain) next() uint64 {
	d.last++
	return d.last
}

// Last returns the most recently issued id, or NilID if none has been issued.
func (d *Domain) Last() uint64 { return d.last }

// Advance ensures that future ids are strictly greater than id. It is used
// after rebuilding state from a checkpoint so that newly allocated objects do
// not collide with restored ones.
func (d *Domain) Advance(id uint64) {
	if id > d.last {
		d.last = id
	}
}

// Cell is a tracked field: a value whose Set marks the owning object's Info
// as modified. It stands in for the write barriers that the paper's
// preprocessor would insert into Java setters.
//
// Read with Get (or the exported V field); write with Set so the dirty bit
// is maintained.
type Cell[T any] struct {
	// V is the current value. Prefer Set for writes; direct assignment
	// bypasses modification tracking.
	V T
}

// Get returns the current value.
func (c *Cell[T]) Get() T { return c.V }

// Set stores v and marks owner as modified.
func (c *Cell[T]) Set(owner *Info, v T) {
	c.V = v
	owner.SetModified()
}
