package ckpt

import (
	"sync"
	"sync/atomic"

	"ickpt/wire"
)

// This file implements the shadow-payload cache behind sub-object delta
// encoding. The emitter diffs each large record payload against a shadow of
// the payload the same object carried in the last *committed* checkpoint and
// ships only the changed byte runs (wire.KindDelta); the cache is what makes
// that safe under the epoch commit/abort protocol:
//
//   - While an epoch is being encoded, the payloads it emits are staged as
//     pending shadows (Stage). The diff base for a record is the newest
//     pending shadow when one exists — an in-flight epoch's body precedes
//     this one in the stream, so the rebuilder will have materialized its
//     payload by the time this delta applies — falling back to the last
//     committed shadow.
//   - Session.Commit promotes the epoch's pending shadows to committed
//     (CommitEpoch); Session.Abort drops them (AbortEpoch) and marks the
//     touched entries stale, so an aborted epoch can never poison the base:
//     the next emit of the object ships a full payload and re-establishes
//     the shadow from bytes that actually reached the stream.
//   - An object emitted while its shadow update is suppressed (the churn
//     backoff below) also stales its entry: a base may only serve diffs if
//     it equals the object's latest payload in the durable stream, byte for
//     byte. The base hash embedded in every delta (wire.DeltaBaseHash) is
//     the recovery-time backstop should a driver violate the protocol.
//
// Fully-churned objects would otherwise pay a wasted comparison sweep plus a
// shadow copy every epoch for zero byte savings. The cache backs off
// per-object: after two consecutive failed delta attempts, decide/report
// return a skip window — the number of upcoming emits to leave undiffed and
// unshadowed, doubling per round up to skipMax — which the emitter parks in
// the object's Info (Info.shadowSkip) and consumes there, without taking the
// cache's lock again until the window drains and the next probe runs. The
// arming call stales the entry up front, covering the full payloads the
// window ships. Worst-case overhead is amortized to a few percent while a
// drop in churn is still discovered.
type ShadowCache struct {
	mu      sync.Mutex
	minSize int
	entries map[uint64]*shadowEntry
	// count mirrors len(entries), readable without mu: decide's sub-floor
	// fast path checks it to skip the lock while nothing is shadowed.
	count  atomic.Int64
	epochs map[uint64][]uint64 // in-flight epoch -> staged ids
	free   [][]byte            // recycled payload buffers (never ack-path buffers)
	stats  ShadowStats
}

// shadowEntry is one object's shadow state.
type shadowEntry struct {
	committed []byte
	hash      uint32
	// stale means committed no longer matches the object's latest payload
	// in the stream (a backoff-suppressed emit, or an abort), so it must
	// not serve as a diff base.
	stale bool
	pend  []shadowPend

	// miss counts consecutive failed delta attempts; at missBackoff each
	// further miss arms a skip window (missLocked) that the emitter parks
	// in the object's Info and consumes lock-free.
	miss uint8
}

// shadowPend is a staged payload copy awaiting its epoch's commit.
type shadowPend struct {
	epoch uint64
	buf   []byte
	hash  uint32
}

// ShadowStats counts cache activity, for tests and diagnostics.
type ShadowStats struct {
	// Staged counts payload copies staged; Committed and Aborted count
	// epoch resolutions that promoted or dropped pending shadows.
	Staged    int
	Committed int
	Aborted   int
	// Wins and Losses count delta attempts by outcome; SkippedEmits counts
	// emits left undiffed by the churn backoff.
	Wins         int
	Losses       int
	SkippedEmits int
}

const (
	// deltaLimitNum/Den: a delta must come in under ~3/4 of the full
	// payload or the full payload is shipped instead — past that point the
	// opcode stream plus apply cost outweighs the byte savings.
	deltaLimitNum = 3
	deltaLimitDen = 4
	// missBackoff failed attempts in a row arm the skip window.
	missBackoff = 2
	skipMax     = 64
)

// NewShadowCache returns a cache shadowing only payloads larger than minSize
// bytes (small records gain nothing from delta framing; minSize <= 0 shadows
// everything). One cache serves one logical stream: share it across the
// writers of a stream (parfold workers, a tracker fold and its Full-mode
// fallback) and never across streams.
func NewShadowCache(minSize int) *ShadowCache {
	return &ShadowCache{
		minSize: minSize,
		entries: make(map[uint64]*shadowEntry),
		epochs:  make(map[uint64][]uint64),
	}
}

// MinSize returns the shadowing threshold.
func (c *ShadowCache) MinSize() int { return c.minSize }

// Len returns the number of shadowed objects.
func (c *ShadowCache) Len() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return len(c.entries)
}

// Stats returns a snapshot of the cache's counters.
func (c *ShadowCache) Stats() ShadowStats {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.stats
}

// CommittedBase returns a copy of the payload the cache would use as the
// diff base for id if no epoch were in flight: the last committed shadow, or
// nil when none exists or the entry is stale. It exists for tests asserting
// the commit/abort contract (an abort must leave the base at the last
// committed payload).
func (c *ShadowCache) CommittedBase(id uint64) []byte {
	c.mu.Lock()
	defer c.mu.Unlock()
	e := c.entries[id]
	if e == nil || e.stale || e.committed == nil {
		return nil
	}
	return append([]byte(nil), e.committed...)
}

// decide is the per-record policy call, made by the emitter before framing a
// payload of n bytes for id. It returns the diff base to attempt a delta
// against (nil: emit a full payload), whether the payload should be staged
// as the object's next shadow, and — when the call armed the churn backoff —
// the skip window for the emitter to park in the object's Info.
func (c *ShadowCache) decide(id uint64, n int, mode Mode) (base []byte, hash uint32, stage bool, window int) {
	if n <= c.minSize && c.count.Load() == 0 {
		// Below the floor while nothing is shadowed: no entry to stale-mark,
		// no base to serve. An entry for this id could only have been created
		// by this id's own writer, synchronously before this call, so the
		// lock-free check cannot miss one. Domains whose payloads never
		// exceed the floor stay at plain-writer cost.
		return nil, 0, false, 0
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	e := c.entries[id]
	if n <= c.minSize {
		// The object shrank out of shadowing range: its full payload is in
		// the stream now, so an existing shadow no longer matches it.
		if e != nil {
			e.stale = true
		}
		return nil, 0, false, 0
	}
	if e == nil {
		return nil, 0, true, 0 // first sighting: establish the shadow
	}
	if mode == Full {
		// Full bodies never carry deltas (a full checkpoint resets the
		// rebuilder, so a delta in one has no base) but refresh the shadow,
		// so the incremental epochs that follow can diff immediately.
		return nil, 0, true, 0
	}
	if k := len(e.pend); k > 0 && !e.stale {
		// The newest pending shadow is the base: its epoch's body precedes
		// this one in the stream, so the rebuilder materializes it first.
		// A stale entry disqualifies pendings too — staling paths that ship
		// unstaged full payloads (a shrink below the floor, a churn-window
		// arming) leave older pends behind, and the object's latest payload
		// in the stream is the unstaged full body, not the pend. Stage
		// resets the flag once a copy that matches the stream is restaged.
		base, hash = e.pend[k-1].buf, e.pend[k-1].hash
	} else if !e.stale && e.committed != nil {
		base, hash = e.committed, e.hash
	}
	if base == nil {
		return nil, 0, true, 0 // no usable base: full payload, re-establish
	}
	if len(base) != n {
		// Resizing payloads cannot delta (deltas are aligned); treat like a
		// failed attempt so oscillating objects back off too. A window armed
		// here behaves like a loss-armed one: the entry is staled and the
		// payload left unstaged, since the window's emits would stale any
		// staged copy before it could serve.
		if w := c.missLocked(e); w > 0 {
			e.stale = true
			return nil, 0, false, int(w)
		}
		return nil, 0, true, 0
	}
	return base, hash, true, 0
}

// report records a delta attempt's outcome for id. On a loss that arms the
// churn backoff it returns the skip window: the next `window` emits of the
// object are to be left undiffed and unshadowed, a count the emitter parks
// in the object's Info and consumes without coming back to the cache. The
// entry is staled here, up front — the window's emits ship full payloads
// that supersede the shadow without refreshing it — so the emitter also
// drops any staging for the current record (the copy could never serve).
func (c *ShadowCache) report(id uint64, win bool) (window int) {
	c.mu.Lock()
	defer c.mu.Unlock()
	e := c.entries[id]
	if e == nil {
		return 0
	}
	if win {
		e.miss = 0
		c.stats.Wins++
		return 0
	}
	c.stats.Losses++
	if w := c.missLocked(e); w > 0 {
		e.stale = true
		return int(w)
	}
	return 0
}

// missLocked advances the churn backoff after a failed attempt and returns
// the skip window it arms, or 0 while the streak is below missBackoff.
func (c *ShadowCache) missLocked(e *shadowEntry) uint16 {
	if e.miss < 255 {
		e.miss++
	}
	if e.miss < missBackoff {
		return 0
	}
	w := uint16(1) << min(e.miss-missBackoff, 6)
	if w > skipMax {
		w = skipMax
	}
	return w
}

// addSkipped accumulates emits the churn backoff left undiffed. The skip
// path itself never takes the cache's lock — emitters count skips locally
// and flush the batch here once per epoch (Emitter.TakeShadowStages).
func (c *ShadowCache) addSkipped(n int) {
	c.mu.Lock()
	c.stats.SkippedEmits += n
	c.mu.Unlock()
}

// ShadowStage is one payload copy bound for the cache: the emitter
// accumulates them per epoch (copyPayload) and the epoch's driver stages the
// batch at Finish (Stage) or discards it when the epoch dies before its body
// completes (Discard). The fields are owned by the cache.
type ShadowStage struct {
	id   uint64
	buf  []byte
	hash uint32
}

// copyPayload copies payload into a cache-owned buffer (recycled when one
// fits) and fingerprints it, returning the stage entry to accumulate.
func (c *ShadowCache) copyPayload(id uint64, payload []byte) ShadowStage {
	c.mu.Lock()
	buf := c.getBufLocked(len(payload))
	c.mu.Unlock()
	buf = buf[:len(payload)]
	copy(buf, payload)
	return ShadowStage{id: id, buf: buf, hash: wire.DeltaBaseHash(buf)}
}

// getBufLocked returns a buffer with capacity for n bytes, recycling a
// discarded one when it fits.
func (c *ShadowCache) getBufLocked(n int) []byte {
	for i := len(c.free) - 1; i >= 0 && i >= len(c.free)-8; i-- {
		if cap(c.free[i]) >= n {
			buf := c.free[i]
			c.free[i] = c.free[len(c.free)-1]
			c.free[len(c.free)-1] = nil
			c.free = c.free[:len(c.free)-1]
			return buf[:0]
		}
	}
	return make([]byte, 0, n)
}

// Stage registers an epoch's payload copies as pending shadows. The epoch
// stays in flight until CommitEpoch or AbortEpoch resolves it — with a
// Session attached, Session.Commit/Abort route here (Session.AttachShadow).
// Staging the same epoch again replaces its entries (a retake under the same
// epoch after a partial failure).
func (c *ShadowCache) Stage(epoch uint64, stages []ShadowStage) {
	c.mu.Lock()
	defer c.mu.Unlock()
	ids := c.epochs[epoch]
	for _, st := range stages {
		e := c.entries[st.id]
		if e == nil {
			e = &shadowEntry{}
			c.entries[st.id] = e
		}
		if n := len(e.pend); n > 0 && e.pend[n-1].epoch == epoch {
			// Same-epoch restage: the new payload supersedes.
			c.free = append(c.free, e.pend[n-1].buf)
			e.pend[n-1] = shadowPend{epoch: epoch, buf: st.buf, hash: st.hash}
		} else {
			e.pend = append(e.pend, shadowPend{epoch: epoch, buf: st.buf, hash: st.hash})
			ids = append(ids, st.id)
		}
		// The newest pending now matches the object's latest payload in the
		// stream, so the entry serves diffs again.
		e.stale = false
		c.stats.Staged++
	}
	c.epochs[epoch] = ids
	c.count.Store(int64(len(c.entries)))
}

// Discard recycles stage entries that never reached Stage: the epoch's fold
// failed or its body was abandoned before Finish, so the copies were never
// published and their buffers can be reused directly.
func (c *ShadowCache) Discard(stages []ShadowStage) {
	if len(stages) == 0 {
		return
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	for _, st := range stages {
		c.free = append(c.free, st.buf)
	}
}

// CommitEpoch promotes epoch's pending shadows to committed: the epoch's
// body is durable, so its payloads are now the diff bases for the records
// that follow. A Full epoch additionally prunes entries it did not stage —
// objects absent from a full checkpoint are dead (or shrank below the
// shadowing threshold), and must not linger.
//
// Buffers replaced on the commit path are never recycled: an emitter may be
// diffing against them concurrently (acknowledgements arrive from the log's
// goroutine), so they are left to the garbage collector.
func (c *ShadowCache) CommitEpoch(epoch uint64, mode Mode) {
	c.mu.Lock()
	defer c.mu.Unlock()
	ids := c.epochs[epoch]
	delete(c.epochs, epoch)
	for _, id := range ids {
		e := c.entries[id]
		if e == nil {
			continue
		}
		for i, p := range e.pend {
			if p.epoch == epoch {
				// In-order resolution makes i == 0; older unresolved
				// pendings (a protocol violation) are dropped with it.
				e.committed, e.hash = p.buf, p.hash
				e.pend = append(e.pend[:0], e.pend[i+1:]...)
				break
			}
		}
	}
	c.stats.Committed++
	if mode != Full {
		return
	}
	staged := make(map[uint64]struct{}, len(ids))
	for _, id := range ids {
		staged[id] = struct{}{}
	}
	for id, e := range c.entries {
		if _, ok := staged[id]; !ok && len(e.pend) == 0 {
			delete(c.entries, id)
		}
	}
	c.count.Store(int64(len(c.entries)))
}

// AbortEpoch drops epoch's pending shadows — its body never became part of
// the stream — and stales every touched entry, conservatively covering
// pendings of later epochs encoded against the lost payloads. That cover
// depends on the sticky-failure requirement documented on
// Session.AttachShadow: a sink must abort every epoch in flight after the
// first lost one, never commit a later epoch whose delta bases died with an
// earlier body. The surviving committed shadow is exactly the last
// committed payload; the entry serves diffs again once a re-marked emit
// restages it.
func (c *ShadowCache) AbortEpoch(epoch uint64) {
	c.mu.Lock()
	defer c.mu.Unlock()
	ids := c.epochs[epoch]
	delete(c.epochs, epoch)
	for _, id := range ids {
		e := c.entries[id]
		if e == nil {
			continue
		}
		kept := e.pend[:0]
		for _, p := range e.pend {
			if p.epoch < epoch {
				kept = append(kept, p)
			}
		}
		for i := len(kept); i < len(e.pend); i++ {
			e.pend[i] = shadowPend{}
		}
		e.pend = kept
		e.stale = true
	}
	c.stats.Aborted++
}
