package ckpt_test

import (
	"math/rand"
	"testing"

	"ickpt/ckpt"
)

func benchBlobs(n, size int) []*blob {
	d := ckpt.NewDomain()
	bs := make([]*blob, n)
	for i := range bs {
		bs[i] = newBlob(d, size, int64(i))
	}
	return bs
}

func BenchmarkSkipPath(b *testing.B) {
	for _, cfg := range []struct {
		name string
		min  int
		on   bool
	}{{"plain", 0, false}, {"delta", 0, true}, {"bypass", 1 << 20, true}} {
		b.Run(cfg.name, func(b *testing.B) {
			blobs := benchBlobs(64, 4096)
			var opts []ckpt.WriterOption
			if cfg.on {
				opts = append(opts, ckpt.WithDeltaEncoding(cfg.min))
			}
			wr := ckpt.NewWriter(opts...)
			rng := rand.New(rand.NewSource(9))
			take := func(mode ckpt.Mode) {
				wr.Start(mode)
				for _, bl := range blobs {
					if err := wr.Checkpoint(bl); err != nil {
						b.Fatal(err)
					}
				}
				if _, _, err := wr.Finish(); err != nil {
					b.Fatal(err)
				}
			}
			// Full-payload churn via a cheap xorshift: this runs untimed
			// inside the measured loop, where per-byte rng.Intn would
			// dominate wall-clock and stall the benchmark harness.
			x := rng.Uint64() | 1
			mutate := func() {
				for _, bl := range blobs {
					for i := range bl.data {
						x ^= x << 13
						x ^= x >> 7
						x ^= x << 17
						bl.data[i] ^= byte(x) | 1
					}
					bl.info.Mark()
				}
			}
			take(ckpt.Full)
			for i := 0; i < 200; i++ { // reach skipMax steady state
				mutate()
				take(ckpt.Incremental)
			}
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				b.StopTimer()
				mutate()
				b.StartTimer()
				take(ckpt.Incremental)
			}
		})
	}
}
