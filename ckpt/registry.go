package ckpt

import "fmt"

// Factory constructs an empty ("shell") object carrying the given restored
// id. The Rebuilder later fills the shell by calling its Restore method.
type Factory func(id uint64) Restorable

// Registry maps type names to stable TypeIDs and factories. Register every
// checkpointable type before rebuilding state from a checkpoint.
//
// Registry is safe to build once and share; it must not be mutated while a
// Rebuilder is using it.
type Registry struct {
	factories map[TypeID]Factory
	names     map[TypeID]string
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{
		factories: make(map[TypeID]Factory),
		names:     make(map[TypeID]string),
	}
}

// Register associates name (and its derived TypeID) with a factory. It
// returns the TypeID, or ErrTypeConflict if another name hashes to the same
// id or the name is already registered with a different factory.
func (r *Registry) Register(name string, f Factory) (TypeID, error) {
	t := TypeIDOf(name)
	if prev, ok := r.names[t]; ok {
		return t, fmt.Errorf("%w: %q and %q share type id %d", ErrTypeConflict, prev, name, t)
	}
	r.factories[t] = f
	r.names[t] = name
	return t, nil
}

// MustRegister is Register, panicking on conflict. Intended for package-level
// type catalogs built at startup, where a conflict is a programming error.
func (r *Registry) MustRegister(name string, f Factory) TypeID {
	t, err := r.Register(name, f)
	if err != nil {
		panic(err)
	}
	return t
}

// Name returns the registered name for t, or "" if unknown.
func (r *Registry) Name(t TypeID) string { return r.names[t] }

// factory returns the factory for t.
func (r *Registry) factory(t TypeID) (Factory, bool) {
	f, ok := r.factories[t]
	return f, ok
}
