package ckpt_test

import (
	"bytes"
	"errors"
	"math/rand"
	"testing"
	"testing/quick"

	"ickpt/ckpt"
	"ickpt/wire"
)

// Test fixture: a box holding a linked list of points, mirroring the paper's
// Entry classes (local scalar state + checkpointable children).

var (
	typePoint = ckpt.TypeIDOf("ckpttest.point")
	typeBox   = ckpt.TypeIDOf("ckpttest.box")
)

type point struct {
	info  ckpt.Info
	x, y  int64
	label string
	next  *point
}

var _ ckpt.Restorable = (*point)(nil)

func newPoint(d *ckpt.Domain, x, y int64, label string) *point {
	return &point{info: ckpt.NewInfo(d), x: x, y: y, label: label}
}

func (p *point) CheckpointInfo() *ckpt.Info    { return &p.info }
func (p *point) CheckpointTypeID() ckpt.TypeID { return typePoint }
func (p *point) Record(e *wire.Encoder) {
	e.Varint(p.x)
	e.Varint(p.y)
	e.String(p.label)
	e.Uvarint(childID(p.next))
}
func (p *point) Fold(w *ckpt.Writer) error {
	if p.next != nil {
		return w.Checkpoint(p.next)
	}
	return nil
}
func (p *point) Restore(d *wire.Decoder, res *ckpt.Resolver) error {
	p.x = d.Varint()
	p.y = d.Varint()
	p.label = d.String()
	next, err := ckpt.ResolveAs[*point](res, d.Uvarint())
	if err != nil {
		return err
	}
	p.next = next
	return nil
}

type box struct {
	info ckpt.Info
	n    int64
	head *point
}

var _ ckpt.Restorable = (*box)(nil)

func newBox(d *ckpt.Domain, n int64) *box {
	return &box{info: ckpt.NewInfo(d), n: n}
}

func (b *box) CheckpointInfo() *ckpt.Info    { return &b.info }
func (b *box) CheckpointTypeID() ckpt.TypeID { return typeBox }
func (b *box) Record(e *wire.Encoder) {
	e.Varint(b.n)
	e.Uvarint(childID(b.head))
}
func (b *box) Fold(w *ckpt.Writer) error {
	if b.head != nil {
		return w.Checkpoint(b.head)
	}
	return nil
}
func (b *box) Restore(d *wire.Decoder, res *ckpt.Resolver) error {
	b.n = d.Varint()
	head, err := ckpt.ResolveAs[*point](res, d.Uvarint())
	if err != nil {
		return err
	}
	b.head = head
	return nil
}

func childID(p *point) uint64 {
	if p == nil {
		return ckpt.NilID
	}
	return p.info.ID()
}

func testRegistry(t *testing.T) *ckpt.Registry {
	t.Helper()
	reg := ckpt.NewRegistry()
	reg.MustRegister("ckpttest.point", func(id uint64) ckpt.Restorable {
		return &point{info: ckpt.RestoredInfo(id)}
	})
	reg.MustRegister("ckpttest.box", func(id uint64) ckpt.Restorable {
		return &box{info: ckpt.RestoredInfo(id)}
	})
	return reg
}

// buildChain returns a box with a list of n points.
func buildChain(d *ckpt.Domain, n int) *box {
	b := newBox(d, int64(n))
	var head *point
	for i := n - 1; i >= 0; i-- {
		p := newPoint(d, int64(i), int64(i*i), "p")
		p.next = head
		head = p
	}
	b.head = head
	return b
}

func checkpointBody(t *testing.T, w *ckpt.Writer, mode ckpt.Mode, roots ...ckpt.Checkpointable) ([]byte, ckpt.Stats) {
	t.Helper()
	w.Start(mode)
	for _, r := range roots {
		if err := w.Checkpoint(r); err != nil {
			t.Fatalf("Checkpoint: %v", err)
		}
	}
	body, stats, err := w.Finish()
	if err != nil {
		t.Fatalf("Finish: %v", err)
	}
	out := make([]byte, len(body))
	copy(out, body)
	return out, stats
}

func TestDomainIssuesUniqueIDs(t *testing.T) {
	d := ckpt.NewDomain()
	seen := make(map[uint64]bool)
	for i := 0; i < 1000; i++ {
		info := ckpt.NewInfo(d)
		if info.ID() == ckpt.NilID {
			t.Fatal("issued NilID")
		}
		if seen[info.ID()] {
			t.Fatalf("duplicate id %d", info.ID())
		}
		seen[info.ID()] = true
		if !info.Modified() {
			t.Fatal("new Info must start modified")
		}
	}
	if d.Last() != 1000 {
		t.Errorf("Last = %d, want 1000", d.Last())
	}
}

func TestDomainAdvance(t *testing.T) {
	d := ckpt.NewDomain()
	d.Advance(50)
	info := ckpt.NewInfo(d)
	if info.ID() != 51 {
		t.Errorf("id after Advance(50) = %d, want 51", info.ID())
	}
	d.Advance(10) // must not move backwards
	info = ckpt.NewInfo(d)
	if info.ID() != 52 {
		t.Errorf("id = %d, want 52", info.ID())
	}
}

func TestCellMarksOwner(t *testing.T) {
	d := ckpt.NewDomain()
	info := ckpt.NewInfo(d)
	info.ResetModified()

	var c ckpt.Cell[int]
	c.Set(&info, 7)
	if !info.Modified() {
		t.Error("Cell.Set did not mark owner modified")
	}
	if c.Get() != 7 {
		t.Errorf("Cell.Get = %d, want 7", c.Get())
	}
}

func TestFullCheckpointRecordsEverything(t *testing.T) {
	d := ckpt.NewDomain()
	b := buildChain(d, 5)
	w := ckpt.NewWriter()

	body, stats := checkpointBody(t, w, ckpt.Full, b)
	if stats.Visited != 6 || stats.Recorded != 6 {
		t.Errorf("stats = %+v, want 6 visited and recorded", stats)
	}
	info, err := ckpt.InspectBody(body, nil)
	if err != nil {
		t.Fatalf("InspectBody: %v", err)
	}
	if info.Records != 6 || info.Mode != ckpt.Full || info.Epoch != 1 {
		t.Errorf("body info = %+v", info)
	}
}

func TestIncrementalSkipsUnmodified(t *testing.T) {
	d := ckpt.NewDomain()
	b := buildChain(d, 5)
	w := ckpt.NewWriter()

	// First incremental: everything is new, hence modified.
	_, stats := checkpointBody(t, w, ckpt.Incremental, b)
	if stats.Recorded != 6 {
		t.Fatalf("first incremental recorded %d, want 6", stats.Recorded)
	}

	// Nothing changed: traversal happens, nothing is recorded.
	body, stats := checkpointBody(t, w, ckpt.Incremental, b)
	if stats.Visited != 6 || stats.Recorded != 0 || stats.Skipped != 6 {
		t.Errorf("quiescent stats = %+v", stats)
	}
	info, err := ckpt.InspectBody(body, nil)
	if err != nil {
		t.Fatalf("InspectBody: %v", err)
	}
	if info.Records != 0 {
		t.Errorf("quiescent body has %d records", info.Records)
	}

	// Modify one object: exactly one record.
	b.head.next.x = 99
	b.head.next.info.SetModified()
	_, stats = checkpointBody(t, w, ckpt.Incremental, b)
	if stats.Recorded != 1 {
		t.Errorf("after one mutation recorded %d, want 1", stats.Recorded)
	}
}

func TestCheckpointWithoutStart(t *testing.T) {
	d := ckpt.NewDomain()
	b := buildChain(d, 1)
	w := ckpt.NewWriter()
	if err := w.Checkpoint(b); !errors.Is(err, ckpt.ErrNotStarted) {
		t.Errorf("Checkpoint = %v, want ErrNotStarted", err)
	}
	if _, _, err := w.Finish(); !errors.Is(err, ckpt.ErrNotStarted) {
		t.Errorf("Finish = %v, want ErrNotStarted", err)
	}
}

func TestCycleCheck(t *testing.T) {
	d := ckpt.NewDomain()
	a := newPoint(d, 1, 1, "a")
	b := newPoint(d, 2, 2, "b")
	a.next = b
	b.next = a

	w := ckpt.NewWriter(ckpt.WithCycleCheck())
	w.Start(ckpt.Full)
	if err := w.Checkpoint(a); !errors.Is(err, ckpt.ErrCycle) {
		t.Errorf("Checkpoint on cycle = %v, want ErrCycle", err)
	}

	// Without the option the same structure would recurse forever, so only
	// the guarded path is exercised. An acyclic structure must still pass.
	w.Start(ckpt.Full)
	c := buildChain(d, 3)
	if err := w.Checkpoint(c); err != nil {
		t.Errorf("Checkpoint acyclic with cycle check = %v", err)
	}
}

func TestRebuildFromFull(t *testing.T) {
	d := ckpt.NewDomain()
	b := buildChain(d, 4)
	b.head.label = "first"
	b.head.info.SetModified()
	w := ckpt.NewWriter()
	body, _ := checkpointBody(t, w, ckpt.Full, b)

	rb := ckpt.NewRebuilder(testRegistry(t))
	if err := rb.Apply(body); err != nil {
		t.Fatalf("Apply: %v", err)
	}
	d2 := ckpt.NewDomain()
	objs, err := rb.Build(d2)
	if err != nil {
		t.Fatalf("Build: %v", err)
	}
	got, ok := objs[b.info.ID()].(*box)
	if !ok {
		t.Fatalf("rebuilt root is %T", objs[b.info.ID()])
	}
	requireChainEqual(t, b, got)
	if d2.Last() < rb.MaxID() {
		t.Errorf("domain not advanced: last=%d maxID=%d", d2.Last(), rb.MaxID())
	}
}

func TestRebuildFullPlusIncrementals(t *testing.T) {
	d := ckpt.NewDomain()
	b := buildChain(d, 6)
	w := ckpt.NewWriter()

	var bodies [][]byte
	body, _ := checkpointBody(t, w, ckpt.Full, b)
	bodies = append(bodies, body)

	// Three rounds of mutations, each followed by an incremental.
	for round := 0; round < 3; round++ {
		i := 0
		for p := b.head; p != nil; p = p.next {
			if i%2 == round%2 {
				p.x += int64(round + 1)
				p.info.SetModified()
			}
			i++
		}
		b.n++
		b.info.SetModified()
		body, _ := checkpointBody(t, w, ckpt.Incremental, b)
		bodies = append(bodies, body)
	}

	rb := ckpt.NewRebuilder(testRegistry(t))
	for _, body := range bodies {
		if err := rb.Apply(body); err != nil {
			t.Fatalf("Apply: %v", err)
		}
	}
	objs, err := rb.Build(nil)
	if err != nil {
		t.Fatalf("Build: %v", err)
	}
	got := objs[b.info.ID()].(*box)
	requireChainEqual(t, b, got)
}

func TestRebuildFirstBodyMustBeFull(t *testing.T) {
	d := ckpt.NewDomain()
	b := buildChain(d, 2)
	w := ckpt.NewWriter()
	body, _ := checkpointBody(t, w, ckpt.Incremental, b)

	rb := ckpt.NewRebuilder(testRegistry(t))
	if err := rb.Apply(body); !errors.Is(err, ckpt.ErrBadBody) {
		t.Errorf("Apply incremental first = %v, want ErrBadBody", err)
	}
}

func TestRebuildFullResetsDeadObjects(t *testing.T) {
	d := ckpt.NewDomain()
	b := buildChain(d, 3)
	w := ckpt.NewWriter()

	body1, _ := checkpointBody(t, w, ckpt.Full, b)

	// Drop the tail of the list, then take another full checkpoint.
	dropped := b.head.next
	b.head.next = nil
	b.head.info.SetModified()
	body2, _ := checkpointBody(t, w, ckpt.Full, b)

	rb := ckpt.NewRebuilder(testRegistry(t))
	if err := rb.Apply(body1); err != nil {
		t.Fatal(err)
	}
	if err := rb.Apply(body2); err != nil {
		t.Fatal(err)
	}
	objs, err := rb.Build(nil)
	if err != nil {
		t.Fatalf("Build: %v", err)
	}
	if _, ok := objs[dropped.info.ID()]; ok {
		t.Error("dead object resurrected after full checkpoint")
	}
	if len(objs) != 2 { // box + remaining point
		t.Errorf("rebuilt %d objects, want 2", len(objs))
	}
}

func TestRebuildUnknownType(t *testing.T) {
	d := ckpt.NewDomain()
	b := buildChain(d, 1)
	w := ckpt.NewWriter()
	body, _ := checkpointBody(t, w, ckpt.Full, b)

	reg := ckpt.NewRegistry() // nothing registered
	rb := ckpt.NewRebuilder(reg)
	if err := rb.Apply(body); err != nil {
		t.Fatal(err)
	}
	if _, err := rb.Build(nil); !errors.Is(err, ckpt.ErrUnknownType) {
		t.Errorf("Build = %v, want ErrUnknownType", err)
	}
}

func TestRebuildCorruptBody(t *testing.T) {
	d := ckpt.NewDomain()
	b := buildChain(d, 3)
	w := ckpt.NewWriter()
	body, _ := checkpointBody(t, w, ckpt.Full, b)

	// Cuts inside the header or inside the final record must fail. A cut
	// exactly on a record boundary is a legal (shorter) body, so only
	// mid-record offsets are tested.
	for _, cut := range []int{1, 2, len(body) - 1} {
		rb := ckpt.NewRebuilder(testRegistry(t))
		if err := rb.Apply(body[:cut]); err == nil {
			t.Errorf("Apply truncated body (cut=%d) succeeded", cut)
		}
	}
}

func TestResolveAsTypeMismatch(t *testing.T) {
	d := ckpt.NewDomain()
	b := newBox(d, 1)
	p := newPoint(d, 1, 2, "x")
	// Hand-craft a body where the box's head id points at another box.
	b2 := newBox(d, 2)
	b.head = p
	_ = p

	w := ckpt.NewWriter()
	w.Start(ckpt.Full)
	em := w.Emitter()
	enc := em.Begin(b.CheckpointInfo(), typeBox)
	enc.Varint(b.n)
	enc.Uvarint(b2.info.ID()) // wrong type for head
	em.End()
	em.Emit(b2)
	body, _, err := w.Finish()
	if err != nil {
		t.Fatal(err)
	}

	rb := ckpt.NewRebuilder(testRegistry(t))
	if err := rb.Apply(append([]byte(nil), body...)); err != nil {
		t.Fatal(err)
	}
	if _, err := rb.Build(nil); !errors.Is(err, ckpt.ErrTypeConflict) {
		t.Errorf("Build = %v, want ErrTypeConflict", err)
	}
}

func TestWriterEpochAdvances(t *testing.T) {
	d := ckpt.NewDomain()
	b := buildChain(d, 1)
	w := ckpt.NewWriter()
	body1, _ := checkpointBody(t, w, ckpt.Full, b)
	body2, _ := checkpointBody(t, w, ckpt.Full, b)
	i1, err := ckpt.InspectBody(body1, nil)
	if err != nil {
		t.Fatal(err)
	}
	i2, err := ckpt.InspectBody(body2, nil)
	if err != nil {
		t.Fatal(err)
	}
	if i1.Epoch != 1 || i2.Epoch != 2 {
		t.Errorf("epochs = %d, %d; want 1, 2", i1.Epoch, i2.Epoch)
	}
	if !bytes.Equal(body1[3:], body2[3:]) {
		t.Error("identical state should yield identical records")
	}
}

// requireChainEqual compares a box and its full list structurally.
func requireChainEqual(t *testing.T, want, got *box) {
	t.Helper()
	if want.n != got.n {
		t.Errorf("box.n = %d, want %d", got.n, want.n)
	}
	wp, gp := want.head, got.head
	i := 0
	for wp != nil && gp != nil {
		if wp.x != gp.x || wp.y != gp.y || wp.label != gp.label {
			t.Errorf("point %d = (%d,%d,%q), want (%d,%d,%q)",
				i, gp.x, gp.y, gp.label, wp.x, wp.y, wp.label)
		}
		if wp.info.ID() != gp.info.ID() {
			t.Errorf("point %d id = %d, want %d", i, gp.info.ID(), wp.info.ID())
		}
		wp, gp = wp.next, gp.next
		i++
	}
	if (wp == nil) != (gp == nil) {
		t.Error("list lengths differ")
	}
}

// TestQuickIncrementalEqualsState fuzzes mutation sequences: after a base
// full checkpoint and a run of incrementals, the rebuilt state must equal
// the live state — the core correctness invariant of incremental
// checkpointing.
func TestQuickIncrementalEqualsState(t *testing.T) {
	f := func(seed int64, rounds uint8) bool {
		rng := rand.New(rand.NewSource(seed))
		d := ckpt.NewDomain()
		b := buildChain(d, 1+rng.Intn(8))
		w := ckpt.NewWriter()

		w.Start(ckpt.Full)
		if err := w.Checkpoint(b); err != nil {
			return false
		}
		body, _, err := w.Finish()
		if err != nil {
			return false
		}
		rb := ckpt.NewRebuilder(testRegistryQuick())
		if err := rb.Apply(append([]byte(nil), body...)); err != nil {
			return false
		}

		n := int(rounds % 6)
		for r := 0; r < n; r++ {
			// Random mutations: tweak fields, extend or truncate the list.
			for p := b.head; p != nil; p = p.next {
				if rng.Intn(3) == 0 {
					p.x = rng.Int63n(1000)
					p.y = -p.x
					p.info.SetModified()
				}
			}
			switch rng.Intn(4) {
			case 0: // prepend
				p := newPoint(d, rng.Int63n(100), 0, "new")
				p.next = b.head
				b.head = p
				b.info.SetModified()
			case 1: // truncate after head
				if b.head != nil && b.head.next != nil {
					b.head.next = nil
					b.head.info.SetModified()
				}
			}
			b.n = rng.Int63n(1 << 30)
			b.info.SetModified()

			w.Start(ckpt.Incremental)
			if err := w.Checkpoint(b); err != nil {
				return false
			}
			body, _, err := w.Finish()
			if err != nil {
				return false
			}
			if err := rb.Apply(append([]byte(nil), body...)); err != nil {
				return false
			}
		}

		objs, err := rb.Build(nil)
		if err != nil {
			return false
		}
		got, ok := objs[b.info.ID()].(*box)
		if !ok || got.n != b.n {
			return false
		}
		wp, gp := b.head, got.head
		for wp != nil && gp != nil {
			if wp.x != gp.x || wp.y != gp.y || wp.info.ID() != gp.info.ID() {
				return false
			}
			wp, gp = wp.next, gp.next
		}
		return wp == nil && gp == nil
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

// testRegistryQuick is testRegistry without the *testing.T dependency, for
// use inside quick.Check functions.
func testRegistryQuick() *ckpt.Registry {
	reg := ckpt.NewRegistry()
	reg.MustRegister("ckpttest.point", func(id uint64) ckpt.Restorable {
		return &point{info: ckpt.RestoredInfo(id)}
	})
	reg.MustRegister("ckpttest.box", func(id uint64) ckpt.Restorable {
		return &box{info: ckpt.RestoredInfo(id)}
	})
	return reg
}
