// Package tenant is the multi-tenant checkpoint service: one Manager owns N
// independent tenants — per-user session state at "millions of users" scale
// — and checkpoints them concurrently onto one shared stable log.
//
// Each Tenant is a full single-domain stack in miniature: its own
// ckpt.Domain (id space), ckpt.Tracker (O(dirty) mark queue), and
// ckpt.Session (epoch commit/abort authority). What tenants share is the
// expensive machinery: a bounded pool of fold workers and one
// stablelog.AsyncWriter multiplexing every tenant's bodies onto a bounded
// set of segment files. Epochs on the wire are composite —
// tenantID<<32 | localEpoch (see WireEpoch/SplitEpoch) — so interleaved
// segments from different tenants recover independently (Recover filters a
// shared log down to one tenant's run).
//
// Scheduling is smallest-dirty-first: a tenant with three dirty objects
// checkpoints before one with three thousand, minimizing mean epoch latency
// across tenants, with an anti-starvation aging rule — a request passed over
// too many times is taken next regardless of size — bounding the tail.
//
// Admission control bounds the pending-fold queue. Tenant.Request applies
// backpressure (blocks until the pool drains); Tenant.TryRequest sheds
// instead: the shed is accounted (Stats.Shed), no epoch is lost — the dirty
// set keeps accumulating — and the tenant is degraded to a Full checkpoint
// at its next admitted fold, restoring the bounded-incremental invariant
// (and re-anchoring its recovery chain) after the unbounded gap.
//
// Folds run through the zero-copy path end to end: a worker reserves a
// log-owned buffer (AsyncWriter.Reserve), encodes the tenant's dirty set
// straight into it (Writer.SwapEncoder + StartAt), and submits it without a
// copy (AsyncWriter.Submit). A failed fold recycles the reservation
// (AsyncWriter.Recycle), aborts the epoch through the tenant's session —
// re-marking the cleared flags — and triggers a retry fold that bypasses
// the admission bound. The acknowledgement mux routes each durable-write
// ack back to the owning tenant's session, which commits the epoch; an
// error acknowledgement (only delivered once the shared writer's error has
// gone sticky — transient I/O failures are absorbed by its retry policy)
// aborts the epoch and degrades the tenant to Full, so the next healthy
// writer's anchor recaptures the re-marked state instead of retrying
// against a dead log.
//
// Locking contract: a tenant's domain, tracker, session, and roots are
// guarded by the tenant lock. Folds and acknowledgements take it
// internally; application code mutating tenant state must do so via
// Tenant.Update, which serializes against in-flight folds of that tenant
// (folds of other tenants proceed concurrently). Worker code never holds a
// tenant lock across a Submit — backpressure can block while the
// acknowledgements that would drain it need tenant locks — and never nests
// the manager lock with a tenant lock, in either order.
package tenant
