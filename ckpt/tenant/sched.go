package tenant

import "container/heap"

// request is one pending fold admission for a tenant. weight is the dirty
// count at admission time (live count for a forced-Full request) — the
// scheduling key. seq is the global admission tick, the aging key.
type request struct {
	t      *Tenant
	weight int
	seq    uint64
	hidx   int // index in the heap, maintained by the heap interface
	taken  bool
}

// schedQueue orders pending folds smallest-weight-first with anti-starvation
// aging: every pop advances a tick, and once the oldest pending request has
// waited agingLimit pops it is taken next regardless of weight, so a big
// tenant behind a stream of small ones is delayed by at most agingLimit
// folds. Pop is O(log n): a min-heap on weight plus a FIFO (lazily pruned)
// on admission order. Not safe for concurrent use — the Manager guards it
// with its own lock.
type schedQueue struct {
	heap       reqHeap
	fifo       []*request // admission order; taken entries pruned lazily
	seq        uint64     // next admission tick
	pops       uint64     // pop tick
	agingLimit uint64
}

// Len returns the number of pending requests.
func (q *schedQueue) Len() int { return q.heap.Len() }

// Push admits a request.
func (q *schedQueue) Push(t *Tenant, weight int) {
	r := &request{t: t, weight: weight, seq: q.seq}
	q.seq++
	heap.Push(&q.heap, r)
	q.fifo = append(q.fifo, r)
}

// Pop removes and returns the next tenant to fold: the oldest request once
// it has aged past the limit, the smallest otherwise.
func (q *schedQueue) Pop() *Tenant {
	q.pops++
	// Prune taken entries off the FIFO head so the oldest live request is
	// at the front.
	for len(q.fifo) > 0 && q.fifo[0].taken {
		q.fifo[0] = nil
		q.fifo = q.fifo[1:]
	}
	var r *request
	if len(q.fifo) > 0 && q.agingLimit > 0 && q.pops-q.fifo[0].seq > q.agingLimit {
		r = q.fifo[0]
		q.fifo[0] = nil
		q.fifo = q.fifo[1:]
		heap.Remove(&q.heap, r.hidx)
	} else {
		r = heap.Pop(&q.heap).(*request)
		r.taken = true // pruned off the FIFO lazily
	}
	return r.t
}

// reqHeap is a min-heap of requests by weight, ties broken by admission
// order so equal-weight tenants are served FIFO.
type reqHeap []*request

func (h reqHeap) Len() int { return len(h) }
func (h reqHeap) Less(i, j int) bool {
	if h[i].weight != h[j].weight {
		return h[i].weight < h[j].weight
	}
	return h[i].seq < h[j].seq
}
func (h reqHeap) Swap(i, j int) {
	h[i], h[j] = h[j], h[i]
	h[i].hidx = i
	h[j].hidx = j
}
func (h *reqHeap) Push(x any) {
	r := x.(*request)
	r.hidx = len(*h)
	*h = append(*h, r)
}
func (h *reqHeap) Pop() any {
	old := *h
	n := len(old)
	r := old[n-1]
	old[n-1] = nil
	*h = old[:n-1]
	return r
}
