package tenant

import (
	"errors"
	"sync"

	"ickpt/ckpt"
)

// ErrNotInitialized is returned by Request/TryRequest before Init.
var ErrNotInitialized = errors.New("tenant: not initialized")

// ErrClosed is returned by requests against a closed Manager.
var ErrClosed = errors.New("tenant: manager closed")

// WireEpoch composes a tenant id and a tenant-local epoch into the epoch
// recorded on the shared log: tenantID<<32 | localEpoch. Local epochs are
// limited to 32 bits — at one checkpoint per second that is 136 years per
// tenant.
func WireEpoch(id uint32, local uint64) uint64 {
	return uint64(id)<<32 | (local & 0xFFFFFFFF)
}

// SplitEpoch decomposes a wire epoch into tenant id and local epoch.
func SplitEpoch(wire uint64) (id uint32, local uint64) {
	return uint32(wire >> 32), wire & 0xFFFFFFFF
}

// Stats counts one tenant's checkpoint outcomes over its lifetime.
type Stats struct {
	// Folds counts bodies encoded and submitted (both modes).
	Folds uint64
	// FullFolds counts the subset of Folds taken in Full mode — initial
	// anchors, degradation recoveries, and shed re-anchors.
	FullFolds uint64
	// Acked counts epochs acknowledged durable; Aborted counts epochs
	// aborted (failed folds, failed submissions, failed or stranded
	// writes). Acked+Aborted converges on Folds once the log drains.
	Acked   uint64
	Aborted uint64
	// Retried counts retry folds enqueued after a fold failure aborted the
	// epoch and re-marked its dirty set. Retries bypass the admission bound.
	// Write failures are not retried: an error acknowledgement means the
	// shared writer's error went sticky, so the tenant degrades to Full for
	// the next healthy writer instead.
	Retried uint64
	// Shed counts TryRequest admissions refused by a full queue. A shed
	// drops no epoch — the dirty set keeps accumulating — but degrades the
	// tenant to a Full checkpoint at its next admitted fold.
	Shed uint64
	// Coalesced counts requests that were no-ops: the tenant was already
	// queued, or had nothing to checkpoint.
	Coalesced uint64
	// Bytes counts body bytes encoded (headers included).
	Bytes uint64
}

// Tenant is one isolated checkpoint domain inside a Manager: its own id
// space, dirty index, and epoch session, multiplexed onto the manager's
// shared worker pool and log. Create tenants with Manager.Tenant, then Init
// them with their domain and roots before requesting folds.
//
// All methods are safe for concurrent use; see the package comment for the
// locking contract application mutators must follow (Update).
type Tenant struct {
	id uint32
	m  *Manager

	mu        sync.Mutex
	domain    *ckpt.Domain
	tracker   *ckpt.Tracker
	session   *ckpt.Session
	roots     []ckpt.Checkpointable
	emit      ckpt.EmitOne
	epoch     uint64 // local; wire epochs add the tenant id
	forceFull bool
	queued    bool // a request is pending in the scheduler (coalescing)
	stats     Stats
}

// ID returns the tenant id.
func (t *Tenant) ID() uint32 { return t.id }

// Init attaches the tenant's domain and roots: a fresh Tracker is attached
// to the domain as its write barrier, the roots are watched, and a Session
// (resolving aborts through the tracker) becomes the epoch authority. The
// tenant starts degraded-to-Full — its first fold is the Full anchor its
// recovery chain needs.
//
// emit, when non-nil, is the engine-specific per-object incremental encoder
// (a specialized plan or generated routine); nil selects the generic
// virtual-dispatch path.
func (t *Tenant) Init(domain *ckpt.Domain, emit ckpt.EmitOne, roots ...ckpt.Checkpointable) error {
	t.mu.Lock()
	defer t.mu.Unlock()
	tr := ckpt.NewTracker()
	if err := tr.Watch(roots...); err != nil {
		return err
	}
	if domain != nil {
		domain.AttachTracker(tr)
	}
	t.domain = domain
	t.tracker = tr
	t.session = ckpt.NewSession(ckpt.WithInfoResolver(tr.Resolve))
	t.roots = roots
	t.emit = emit
	t.forceFull = true
	return nil
}

// Update runs fn with exclusive access to the tenant's state: no fold or
// acknowledgement of this tenant runs concurrently, so fn may mutate
// tracked objects (marking them through the domain's write barrier) without
// racing the tracker. Folds of other tenants are unaffected.
func (t *Tenant) Update(fn func()) {
	t.mu.Lock()
	defer t.mu.Unlock()
	fn()
}

// Dirty returns the current dirty-set size.
func (t *Tenant) Dirty() int {
	t.mu.Lock()
	defer t.mu.Unlock()
	if t.tracker == nil {
		return 0
	}
	return t.tracker.Dirty()
}

// Stats returns a snapshot of the tenant's counters.
func (t *Tenant) Stats() Stats {
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.stats
}

// Session exposes the tenant's epoch session (pending counts, degradation)
// for tests and monitoring.
func (t *Tenant) Session() *ckpt.Session {
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.session
}

// Request asks the manager to checkpoint this tenant, blocking while the
// admission queue is full — backpressure, not loss. A request for a tenant
// that is already queued, or has nothing to checkpoint (no dirty objects,
// no pending Full anchor), coalesces into a no-op.
func (t *Tenant) Request() error {
	return t.request(true)
}

// TryRequest is Request without the blocking: a full admission queue sheds
// the request instead. The shed is counted (Stats.Shed) and the tenant is
// degraded to a Full checkpoint at its next admitted fold; no epoch is
// dropped — the dirty set keeps accumulating until a fold is admitted.
// It reports whether the request was admitted (coalesced no-ops count as
// admitted: the work is already covered).
func (t *Tenant) TryRequest() (bool, error) {
	err := t.request(false)
	if errors.Is(err, errShed) {
		return false, nil
	}
	return err == nil, err
}

// errShed is the internal TryRequest refusal marker.
var errShed = errors.New("tenant: admission queue full")

func (t *Tenant) request(block bool) error {
	t.mu.Lock()
	if t.tracker == nil {
		t.mu.Unlock()
		return ErrNotInitialized
	}
	weight := t.tracker.Dirty()
	need := weight > 0 || t.forceFull || t.tracker.Degraded() || t.session.Degraded()
	if t.forceFull || t.tracker.Degraded() {
		// A Full anchor's cost scales with the live set, not the dirty set.
		weight = t.tracker.Len()
	}
	if !need || t.queued {
		t.stats.Coalesced++
		t.mu.Unlock()
		return nil
	}
	t.queued = true
	t.mu.Unlock()

	err := t.m.admit(t, weight, block, false)
	if err != nil {
		t.mu.Lock()
		t.queued = false
		if errors.Is(err, errShed) {
			t.stats.Shed++
			t.forceFull = true
		}
		t.mu.Unlock()
	}
	return err
}

// retryRequest re-queues a fold after a fold failure re-marked the epoch's
// dirty set. Retries bypass the admission bound: every worker could be blocked in
// a producer role, so a bounded retry would deadlock the pool against
// itself; and the work is not new — the epoch was already admitted once.
func (t *Tenant) retryRequest() {
	t.mu.Lock()
	if t.queued {
		t.mu.Unlock()
		return
	}
	t.queued = true
	t.stats.Retried++
	weight := t.tracker.Dirty()
	if t.forceFull || t.tracker.Degraded() || t.session.Degraded() {
		weight = t.tracker.Len()
	}
	t.mu.Unlock()
	if err := t.m.admit(t, weight, false, true); err != nil {
		// Manager closed: the abort already re-marked the state; the next
		// process's Full anchor recaptures it.
		t.mu.Lock()
		t.queued = false
		t.mu.Unlock()
	}
}

// runFold executes one checkpoint of the tenant on a worker's writer: pick
// the mode (degradations and shed re-anchors force Full), reserve a
// log-owned buffer, encode into it zero-copy, observe the epoch with the
// session, and submit. Failures recycle the reservation, abort the epoch —
// re-marking cleared flags and re-enqueueing the dirty set — and schedule a
// retry.
func (t *Tenant) runFold(wr *ckpt.Writer) {
	t.mu.Lock()
	if t.tracker == nil {
		t.mu.Unlock()
		return
	}
	mode := t.session.NextMode(t.tracker.NextMode(ckpt.Incremental))
	if t.forceFull {
		mode = ckpt.Full
	}
	if mode == ckpt.Incremental && t.tracker.Dirty() == 0 {
		// Raced to clean (an abort retried, then the original request also
		// drained, say): nothing to encode.
		t.stats.Coalesced++
		t.mu.Unlock()
		return
	}
	t.epoch++
	we := WireEpoch(t.id, t.epoch)
	enc := t.m.aw.Reserve()
	wr.SwapEncoder(enc)
	wr.StartAt(mode, we)
	var foldErr error
	if mode == ckpt.Full {
		for _, r := range t.roots {
			if err := wr.Checkpoint(r); err != nil {
				foldErr = err
				break
			}
		}
	} else {
		// CheckpointDirty re-enqueues the un-emitted tail itself on error.
		foldErr = wr.CheckpointDirty(t.tracker, t.emit)
	}
	// Gather the clear-set before Finish consumes it: the worker's writer
	// has no session — the tenant observes or aborts the epoch itself.
	clears := wr.Emitter().TakeClears()
	if _, _, err := wr.Finish(); foldErr == nil && err != nil {
		foldErr = err
	}
	if foldErr != nil {
		t.session.Observe(we, mode, clears)
		t.session.Abort(we)
		t.stats.Aborted++
		t.mu.Unlock()
		t.m.aw.Recycle(enc)
		t.retryRequest()
		return
	}
	t.session.Observe(we, mode, clears)
	t.stats.Folds++
	t.stats.Bytes += uint64(enc.Len())
	if mode == ckpt.Full {
		t.stats.FullFolds++
		// The Full body recaptured everything live; re-arm the dirty index
		// over the current graph. A Watch failure leaves forceFull set, so
		// the next fold anchors again.
		if err := t.tracker.Watch(t.roots...); err == nil {
			t.forceFull = false
		}
	}
	t.mu.Unlock()

	// Submit outside the tenant lock: a full log queue blocks here until
	// acknowledgements drain it, and those acks need tenant locks.
	if err := t.m.aw.Submit(mode, we, enc); err != nil {
		// Submit fails only when the shared writer is closed or its error has
		// gone sticky — the log is dead, so a retry fold would just fail the
		// same way. Abort (re-marking the cleared flags) and degrade to Full:
		// the next writer's anchor recaptures everything.
		t.mu.Lock()
		t.session.Abort(we)
		t.stats.Aborted++
		t.forceFull = true
		t.mu.Unlock()
	}
}

// ack resolves one of the tenant's epochs from the log's acknowledgement
// mux: commit on durable write, abort — re-marking the epoch's cleared
// flags back into the dirty index — otherwise. An error acknowledgement is
// only delivered once the AsyncWriter's error has gone sticky (transient
// failures are absorbed by its retry policy), so the tenant does not retry
// the fold against the dead log; it degrades to Full so the next healthy
// writer's anchor recaptures the re-marked state.
func (t *Tenant) ack(wire uint64, err error) {
	t.mu.Lock()
	defer t.mu.Unlock()
	if t.session == nil {
		return
	}
	t.session.Ack(wire, err)
	if err == nil {
		t.stats.Acked++
		return
	}
	t.stats.Aborted++
	t.forceFull = true
}
