package tenant_test

import (
	"bytes"
	"errors"
	"fmt"
	"path/filepath"
	"sync"
	"sync/atomic"
	"testing"

	"ickpt/ckpt"
	"ickpt/ckpt/tenant"
	"ickpt/internal/difftest"
	"ickpt/internal/synth"
	"ickpt/stablelog"
	"ickpt/wire"
)

func newLog(t *testing.T) *stablelog.Log {
	t.Helper()
	lg, err := stablelog.Create(filepath.Join(t.TempDir(), "tenants.log"))
	if err != nil {
		t.Fatalf("create log: %v", err)
	}
	t.Cleanup(func() { lg.Close() })
	return lg
}

// initSynth builds a small synth workload and Inits tn over it.
func initSynth(t *testing.T, tn *tenant.Tenant, structures int, seed int64) *synth.Workload {
	t.Helper()
	w := synth.Build(synth.Shape{Structures: structures, ListLen: 4, Kind: synth.Ints1})
	if err := w.Drain(); err != nil {
		t.Fatalf("drain: %v", err)
	}
	if err := tn.Init(w.Domain, nil, w.Roots()...); err != nil {
		t.Fatalf("init tenant %d: %v", tn.ID(), err)
	}
	_ = seed
	return w
}

// recoveredDump replays one tenant's run out of the shared log and returns
// its canonical rebuild dump.
func recoveredDump(t *testing.T, lg *stablelog.Log, id uint32) []byte {
	t.Helper()
	// Recover exercises the validated atomic path...
	rb := ckpt.NewRebuilder(synth.Registry())
	if err := tenant.Recover(lg, id, rb); err != nil {
		t.Fatalf("recover tenant %d: %v", id, err)
	}
	// ...and the dump comes from the same filtered run.
	run, err := tenant.RecoveryRun(lg, id)
	if err != nil {
		t.Fatalf("recovery run tenant %d: %v", id, err)
	}
	bodies := make([][]byte, len(run))
	for i, seg := range run {
		b, err := lg.Read(seg.Seq)
		if err != nil {
			t.Fatalf("read seq %d: %v", seg.Seq, err)
		}
		bodies[i] = b
	}
	dump, err := difftest.RebuildDump(synth.Registry(), bodies)
	if err != nil {
		t.Fatalf("rebuild dump tenant %d: %v", id, err)
	}
	return dump
}

func liveDump(t *testing.T, w *synth.Workload) []byte {
	t.Helper()
	dump, err := difftest.SnapshotDump(&difftest.Population{Roots: w.Roots()})
	if err != nil {
		t.Fatalf("snapshot dump: %v", err)
	}
	return dump
}

// TestWireEpochRoundTrip pins the composite epoch layout.
func TestWireEpochRoundTrip(t *testing.T) {
	for _, c := range []struct {
		id    uint32
		local uint64
	}{{0, 1}, {1, 1}, {7, 12345}, {1 << 31, 1<<32 - 1}} {
		we := tenant.WireEpoch(c.id, c.local)
		id, local := tenant.SplitEpoch(we)
		if id != c.id || local != c.local {
			t.Fatalf("split(wire(%d,%d)) = (%d,%d)", c.id, c.local, id, local)
		}
	}
}

// TestMultiTenantRoundTrip: several tenants fold interleaved epochs onto one
// shared log; each recovers independently, byte-identical to its live state.
func TestMultiTenantRoundTrip(t *testing.T) {
	lg := newLog(t)
	m := tenant.NewManager(lg, tenant.WithWorkers(2), tenant.WithSyncEvery(4))

	const nTenants = 5
	loads := make([]*synth.Workload, nTenants)
	for i := 0; i < nTenants; i++ {
		tn := m.Tenant(uint32(i + 1))
		loads[i] = initSynth(t, tn, 6+2*i, int64(i))
		if err := tn.Request(); err != nil { // Full anchor
			t.Fatalf("anchor tenant %d: %v", i+1, err)
		}
	}
	if err := m.Flush(); err != nil {
		t.Fatalf("flush anchors: %v", err)
	}

	for round := 0; round < 3; round++ {
		for i := 0; i < nTenants; i++ {
			tn := m.Tenant(uint32(i + 1))
			w := loads[i]
			tn.Update(func() { w.MutateEvery(0.3) })
			if err := tn.Request(); err != nil {
				t.Fatalf("round %d tenant %d: %v", round, i+1, err)
			}
		}
		if err := m.Flush(); err != nil {
			t.Fatalf("round %d flush: %v", round, err)
		}
	}
	if err := m.Close(); err != nil {
		t.Fatalf("close: %v", err)
	}

	// The shared log must actually interleave tenants.
	var switches int
	segs := lg.Segments()
	for i := 1; i < len(segs); i++ {
		a, _ := tenant.SplitEpoch(segs[i-1].Epoch)
		b, _ := tenant.SplitEpoch(segs[i].Epoch)
		if a != b {
			switches++
		}
	}
	if switches < nTenants {
		t.Fatalf("shared log shows %d tenant switches across %d segments — not interleaved", switches, len(segs))
	}

	for i := 0; i < nTenants; i++ {
		id := uint32(i + 1)
		tn := m.Tenant(id)
		st := tn.Stats()
		if st.Folds == 0 || st.Acked != st.Folds || st.Aborted != 0 {
			t.Fatalf("tenant %d stats = %+v, want every fold acked", id, st)
		}
		if p := tn.Session().Pending(); p != 0 {
			t.Fatalf("tenant %d: %d epochs still pending after close", id, p)
		}
		if got, want := recoveredDump(t, lg, id), liveDump(t, loads[i]); !bytes.Equal(got, want) {
			t.Fatalf("tenant %d: recovered state differs from live state", id)
		}
	}
}

// TestBackpressureNotDroppedEpochs: a tiny admission queue under many
// concurrent blocking requests slows producers down instead of losing
// epochs — every requested fold is eventually encoded, written, and acked.
func TestBackpressureNotDroppedEpochs(t *testing.T) {
	lg := newLog(t)
	m := tenant.NewManager(lg,
		tenant.WithWorkers(2), tenant.WithQueueLimit(2), tenant.WithSyncEvery(8))

	const nTenants = 8
	loads := make([]*synth.Workload, nTenants)
	for i := range loads {
		tn := m.Tenant(uint32(i + 1))
		loads[i] = initSynth(t, tn, 4, int64(i))
	}

	var wg sync.WaitGroup
	errs := make(chan error, nTenants)
	for i := 0; i < nTenants; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			tn := m.Tenant(uint32(i + 1))
			w := loads[i]
			for round := 0; round < 6; round++ {
				tn.Update(func() { w.MutateEvery(0.5) })
				if err := tn.Request(); err != nil {
					errs <- fmt.Errorf("tenant %d round %d: %w", i+1, round, err)
					return
				}
			}
		}(i)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
	if err := m.Flush(); err != nil {
		t.Fatalf("flush: %v", err)
	}
	if err := m.Close(); err != nil {
		t.Fatalf("close: %v", err)
	}

	for i := 0; i < nTenants; i++ {
		tn := m.Tenant(uint32(i + 1))
		st := tn.Stats()
		if st.Folds == 0 {
			t.Fatalf("tenant %d folded nothing", i+1)
		}
		if st.Acked != st.Folds || st.Aborted != 0 || st.Shed != 0 {
			t.Fatalf("tenant %d stats = %+v: backpressure dropped epochs", i+1, st)
		}
		if p := tn.Session().Pending(); p != 0 {
			t.Fatalf("tenant %d: %d epochs pending", i+1, p)
		}
		if got, want := recoveredDump(t, lg, uint32(i+1)), liveDump(t, loads[i]); !bytes.Equal(got, want) {
			t.Fatalf("tenant %d: recovered state differs under backpressure", i+1)
		}
	}
}

// gate is a Checkpointable whose Fold, once armed, blocks until released, so
// tests can hold a worker busy deterministically. It must be armed explicitly
// because Fold also runs during Watch's registration traversal at Init time.
type gate struct {
	info    ckpt.Info
	armed   atomic.Bool
	entered chan struct{}
	release chan struct{}
}

func (g *gate) CheckpointInfo() *ckpt.Info    { return &g.info }
func (g *gate) CheckpointTypeID() ckpt.TypeID { return ckpt.TypeIDOf("tenant_test.gate") }
func (g *gate) Record(e *wire.Encoder)        { e.Varint(0) }
func (g *gate) Fold(w *ckpt.Writer) error {
	if g.armed.CompareAndSwap(true, false) {
		g.entered <- struct{}{}
		<-g.release
	}
	return nil
}

// TestTryRequestShedsToFull: with the worker pinned and the queue full,
// TryRequest sheds — accounted, no epoch lost — and the shed tenant's next
// admitted fold is a Full re-anchor, while an identical unshed tenant stays
// incremental.
func TestTryRequestShedsToFull(t *testing.T) {
	lg := newLog(t)
	m := tenant.NewManager(lg,
		tenant.WithWorkers(1), tenant.WithQueueLimit(1), tenant.WithSyncEvery(1))
	defer m.Close()

	g := &gate{entered: make(chan struct{}, 1), release: make(chan struct{})}
	blocker := m.Tenant(1)
	gd := ckpt.NewDomain()
	g.info = ckpt.NewInfo(gd)
	if err := blocker.Init(gd, nil, g); err != nil {
		t.Fatalf("init blocker: %v", err)
	}

	shed := m.Tenant(2)
	control := m.Tenant(3)
	wShed := initSynth(t, shed, 5, 2)
	wControl := initSynth(t, control, 5, 3)

	// Anchor the synth tenants while the worker is free.
	for _, tn := range []*tenant.Tenant{shed, control} {
		if err := tn.Request(); err != nil {
			t.Fatalf("anchor: %v", err)
		}
	}
	if err := m.Flush(); err != nil {
		t.Fatalf("anchor flush: %v", err)
	}

	// Pin the worker in the blocker's fold, then fill the one-slot queue.
	g.armed.Store(true)
	if err := blocker.Request(); err != nil {
		t.Fatalf("blocker request: %v", err)
	}
	<-g.entered
	shed.Update(func() { wShed.MutateEvery(0.5) })
	control.Update(func() { wControl.MutateEvery(0.5) })
	if err := shed.Request(); err != nil { // fills the queue
		t.Fatalf("queue-filling request: %v", err)
	}
	ok, err := control.TryRequest()
	if err != nil {
		t.Fatalf("try request: %v", err)
	}
	if ok {
		t.Fatal("TryRequest admitted into a full queue")
	}
	close(g.release)

	if err := m.Flush(); err != nil {
		t.Fatalf("flush: %v", err)
	}
	if st := control.Stats(); st.Shed != 1 {
		t.Fatalf("control shed count = %d, want 1", st.Shed)
	}

	// The shed tenant's dirty state was not lost; its next admitted fold
	// re-anchors with a Full body.
	if err := control.Request(); err != nil {
		t.Fatalf("post-shed request: %v", err)
	}
	if err := m.Flush(); err != nil {
		t.Fatalf("post-shed flush: %v", err)
	}
	if st := control.Stats(); st.FullFolds != 2 {
		t.Fatalf("shed tenant FullFolds = %d, want 2 (anchor + shed re-anchor)", st.FullFolds)
	}
	if st := shed.Stats(); st.FullFolds != 1 {
		t.Fatalf("unshed tenant FullFolds = %d, want 1 (anchor only)", st.FullFolds)
	}
	if got, want := recoveredDump(t, lg, 3), liveDump(t, wControl); !bytes.Equal(got, want) {
		t.Fatal("shed tenant recovered state differs — the shed lost an update")
	}
}

// TestFoldAbortRemarksAndRetries: an emit failure aborts the epoch through
// the tenant's session (re-marking the dirty set) and schedules a retry that
// bypasses admission; the retry recaptures the full state.
func TestFoldAbortRemarksAndRetries(t *testing.T) {
	lg := newLog(t)
	m := tenant.NewManager(lg, tenant.WithWorkers(1), tenant.WithSyncEvery(1))

	tn := m.Tenant(9)
	w := synth.Build(synth.Shape{Structures: 8, ListLen: 4, Kind: synth.Ints1})
	if err := w.Drain(); err != nil {
		t.Fatalf("drain: %v", err)
	}
	boom := errors.New("emit boom")
	var failures int
	emit := func(em *ckpt.Emitter, o ckpt.Checkpointable) error {
		if failures < 2 {
			failures++
			return boom
		}
		return ckpt.EmitObject(em, o)
	}
	if err := tn.Init(w.Domain, emit, w.Roots()...); err != nil {
		t.Fatalf("init: %v", err)
	}

	if err := tn.Request(); err != nil { // Full anchor (traversal: emit unused)
		t.Fatalf("anchor: %v", err)
	}
	if err := m.Flush(); err != nil {
		t.Fatalf("anchor flush: %v", err)
	}

	tn.Update(func() { w.MutateEvery(0.6) })
	if err := tn.Request(); err != nil {
		t.Fatalf("request: %v", err)
	}
	if err := m.Flush(); err != nil {
		t.Fatalf("flush: %v", err)
	}
	if err := m.Close(); err != nil {
		t.Fatalf("close: %v", err)
	}

	st := tn.Stats()
	if st.Aborted == 0 || st.Retried == 0 {
		t.Fatalf("stats = %+v, want an aborted epoch and a retry", st)
	}
	if p := tn.Session().Pending(); p != 0 {
		t.Fatalf("%d epochs pending after close", p)
	}
	if got, want := recoveredDump(t, lg, 9), liveDump(t, w); !bytes.Equal(got, want) {
		t.Fatal("recovered state differs after abort+retry — re-mark lost updates")
	}
}

// TestRequestCoalesces: duplicate requests for an already-queued tenant and
// requests for a clean tenant are no-ops.
func TestRequestCoalesces(t *testing.T) {
	lg := newLog(t)
	m := tenant.NewManager(lg, tenant.WithWorkers(1), tenant.WithSyncEvery(1))
	defer m.Close()

	g := &gate{entered: make(chan struct{}, 1), release: make(chan struct{})}
	blocker := m.Tenant(1)
	gd := ckpt.NewDomain()
	g.info = ckpt.NewInfo(gd)
	if err := blocker.Init(gd, nil, g); err != nil {
		t.Fatalf("init blocker: %v", err)
	}
	tn := m.Tenant(2)
	w := initSynth(t, tn, 4, 1)

	// Pin the worker so tn's request stays queued.
	g.armed.Store(true)
	if err := blocker.Request(); err != nil {
		t.Fatalf("blocker: %v", err)
	}
	<-g.entered
	tn.Update(func() { w.MutateEvery(0.5) })
	for i := 0; i < 5; i++ {
		if err := tn.Request(); err != nil {
			t.Fatalf("request %d: %v", i, err)
		}
	}
	close(g.release)
	if err := m.Flush(); err != nil {
		t.Fatalf("flush: %v", err)
	}

	st := tn.Stats()
	if st.Folds != 1 {
		t.Fatalf("5 requests while queued produced %d folds, want 1", st.Folds)
	}
	if st.Coalesced < 4 {
		t.Fatalf("coalesced = %d, want >= 4", st.Coalesced)
	}
	// A clean tenant's request is also a no-op.
	before := tn.Stats().Folds
	if err := tn.Request(); err != nil {
		t.Fatalf("clean request: %v", err)
	}
	if err := m.Flush(); err != nil {
		t.Fatalf("clean flush: %v", err)
	}
	if got := tn.Stats().Folds; got != before {
		t.Fatalf("clean tenant folded (%d -> %d folds)", before, got)
	}
}

// TestRecoverNoFull: a tenant with no full anchor on the log fails recovery
// with stablelog.ErrNoFull instead of replaying nonsense.
func TestRecoverNoFull(t *testing.T) {
	lg := newLog(t)
	// Hand-append an incremental-only tenant chain.
	body := []byte{1, byte(ckpt.Incremental)} // minimal framing is irrelevant: filtered run has no Full
	if _, err := lg.Append(ckpt.Incremental, tenant.WireEpoch(5, 1), body); err != nil {
		t.Fatalf("append: %v", err)
	}
	rb := ckpt.NewRebuilder(synth.Registry())
	if err := tenant.Recover(lg, 5, rb); !errors.Is(err, stablelog.ErrNoFull) {
		t.Fatalf("recover = %v, want ErrNoFull", err)
	}
	if ids := tenant.TenantIDs(lg); len(ids) != 1 || ids[0] != 5 {
		t.Fatalf("tenant ids = %v, want [5]", ids)
	}
}
