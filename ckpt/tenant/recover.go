package tenant

import (
	"fmt"

	"ickpt/ckpt"
	"ickpt/stablelog"
)

// TenantIDs scans a shared log and returns the distinct tenant ids with at
// least one segment, in ascending order.
func TenantIDs(l *stablelog.Log) []uint32 {
	seen := make(map[uint32]bool)
	var ids []uint32
	for _, seg := range l.Segments() {
		id, _ := SplitEpoch(seg.Epoch)
		if !seen[id] {
			seen[id] = true
			ids = append(ids, id)
		}
	}
	for i := 1; i < len(ids); i++ {
		for j := i; j > 0 && ids[j] < ids[j-1]; j-- {
			ids[j], ids[j-1] = ids[j-1], ids[j]
		}
	}
	return ids
}

// RecoveryRun filters a shared log down to one tenant's latest replay
// chain: its most recent Full segment and every later segment of the same
// tenant, in log order. Unlike stablelog.RecoveryRun the chain is not
// contiguous in the log — other tenants' segments interleave — so sequence
// numbers increase but need not be consecutive. Returns
// stablelog.ErrNoFull when the tenant has no full checkpoint.
func RecoveryRun(l *stablelog.Log, id uint32) ([]stablelog.SegmentInfo, error) {
	var run []stablelog.SegmentInfo
	for _, seg := range l.Segments() {
		segID, _ := SplitEpoch(seg.Epoch)
		if segID != id {
			continue
		}
		if seg.Mode == ckpt.Full {
			run = run[:0]
		}
		run = append(run, seg)
	}
	if len(run) == 0 || run[0].Mode != ckpt.Full {
		return nil, fmt.Errorf("tenant %d: %w", id, stablelog.ErrNoFull)
	}
	return run, nil
}

// validateRun checks a filtered per-tenant run for coherence — anchored by
// a Full, no second Full mid-run, sequence numbers and local epochs
// strictly increasing. It is the per-tenant analogue of
// stablelog.ValidateRun, minus the consecutive-sequence rule a shared log
// cannot satisfy. Violations wrap stablelog.ErrIncoherent.
func validateRun(id uint32, run []stablelog.SegmentInfo) error {
	if len(run) == 0 {
		return fmt.Errorf("%w: tenant %d: empty run", stablelog.ErrIncoherent, id)
	}
	if run[0].Mode != ckpt.Full {
		return fmt.Errorf("%w: tenant %d: run starts with an incremental (seq %d)",
			stablelog.ErrIncoherent, id, run[0].Seq)
	}
	for i := 1; i < len(run); i++ {
		prev, cur := run[i-1], run[i]
		if cur.Mode != ckpt.Incremental {
			return fmt.Errorf("%w: tenant %d: full checkpoint mid-run (seq %d)",
				stablelog.ErrIncoherent, id, cur.Seq)
		}
		if cur.Seq <= prev.Seq {
			return fmt.Errorf("%w: tenant %d: seq not increasing (%d after %d)",
				stablelog.ErrIncoherent, id, cur.Seq, prev.Seq)
		}
		_, pe := SplitEpoch(prev.Epoch)
		_, ce := SplitEpoch(cur.Epoch)
		if ce <= pe {
			return fmt.Errorf("%w: tenant %d: local epoch not increasing at seq %d (%d after %d)",
				stablelog.ErrIncoherent, id, cur.Seq, ce, pe)
		}
	}
	return nil
}

// Recover replays one tenant's latest run out of a shared log into rb,
// validating the filtered chain first and applying it atomically: on any
// error — no full anchor, incoherent chain, read failure, corrupt body —
// rb is unchanged. Other tenants' interleaved segments are untouched, so N
// tenants recover independently from the same file.
func Recover(l *stablelog.Log, id uint32, rb *ckpt.Rebuilder) error {
	run, err := RecoveryRun(l, id)
	if err != nil {
		return err
	}
	if err := validateRun(id, run); err != nil {
		return err
	}
	bodies := make([][]byte, len(run))
	for i, seg := range run {
		body, err := l.Read(seg.Seq)
		if err != nil {
			return fmt.Errorf("tenant %d: %w", id, err)
		}
		bodies[i] = body
	}
	if err := rb.ApplyRun(bodies); err != nil {
		return fmt.Errorf("tenant %d: replay run at seq %d: %w", id, run[0].Seq, err)
	}
	return nil
}
