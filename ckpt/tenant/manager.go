package tenant

import (
	"fmt"
	"runtime"
	"sync"
	"time"

	"ickpt/ckpt"
	"ickpt/stablelog"
)

// Option configures a Manager.
type Option interface {
	apply(*Manager)
}

type optionFunc func(*Manager)

func (f optionFunc) apply(m *Manager) { f(m) }

// WithWorkers sets the number of shared fold workers. n <= 0 (the default)
// means runtime.GOMAXPROCS(0). Each worker folds one tenant at a time;
// parallelism is across tenants, with every per-tenant fold running the
// inline sequential path (one tenant's state never folds on two goroutines).
func WithWorkers(n int) Option {
	return optionFunc(func(m *Manager) { m.workers = n })
}

// WithQueueLimit bounds the pending-fold admission queue. When full,
// Tenant.Request blocks (backpressure) and Tenant.TryRequest sheds. n <= 0
// means unbounded (the default). Retry folds bypass the bound.
func WithQueueLimit(n int) Option {
	return optionFunc(func(m *Manager) { m.queueLimit = n })
}

// WithAging sets the anti-starvation limit: a pending request passed over n
// times is scheduled next regardless of dirty-set size. n <= 0 disables
// aging. The default is 4x the worker count.
func WithAging(n int) Option {
	return optionFunc(func(m *Manager) { m.aging = n })
}

// WithSyncEvery forwards the group-commit count policy to the shared
// AsyncWriter (see stablelog.WithSyncEvery).
func WithSyncEvery(n int) Option {
	return optionFunc(func(m *Manager) { m.syncEvery = n })
}

// WithSyncInterval forwards the group-commit interval policy to the shared
// AsyncWriter (see stablelog.WithSyncInterval).
func WithSyncInterval(d time.Duration) Option {
	return optionFunc(func(m *Manager) { m.syncInterval = d })
}

// WithLogQueueLimit bounds the shared AsyncWriter's body queue (see
// stablelog.WithQueueLimit). Workers blocked submitting into a full log
// queue are drained by the background writer; acknowledgements keep flowing
// because no tenant lock is held across a submit.
func WithLogQueueLimit(n int) Option {
	return optionFunc(func(m *Manager) { m.logQueueLimit = n })
}

// WithRetry forwards the transient-I/O retry policy to the shared
// AsyncWriter (see stablelog.WithRetry).
func WithRetry(n int, backoff time.Duration) Option {
	return optionFunc(func(m *Manager) {
		m.retryN = n
		m.retryBackoff = backoff
	})
}

// Manager owns the shared half of the multi-tenant checkpoint service: the
// fold worker pool, the admission scheduler, and the AsyncWriter
// multiplexing every tenant's epochs onto one log. See the package comment
// for the architecture and locking contract.
type Manager struct {
	log *stablelog.Log
	aw  *stablelog.AsyncWriter

	workers       int
	queueLimit    int
	aging         int
	syncEvery     int
	syncInterval  time.Duration
	logQueueLimit int
	retryN        int
	retryBackoff  time.Duration

	mu      sync.Mutex
	cond    *sync.Cond
	tenants map[uint32]*Tenant
	queue   schedQueue
	running int // folds currently executing on workers
	closed  bool
	wg      sync.WaitGroup
}

// NewManager starts a manager writing to log. The caller must not use log
// directly until Close returns, and closes log itself afterwards.
func NewManager(log *stablelog.Log, opts ...Option) *Manager {
	m := &Manager{
		log:     log,
		tenants: make(map[uint32]*Tenant),
	}
	m.cond = sync.NewCond(&m.mu)
	for _, o := range opts {
		o.apply(m)
	}
	if m.workers <= 0 {
		m.workers = runtime.GOMAXPROCS(0)
	}
	if m.aging == 0 {
		m.aging = 4 * m.workers
	}
	m.queue.agingLimit = uint64(max(m.aging, 0))

	awOpts := []stablelog.AsyncOption{stablelog.WithAck(m.ack)}
	if m.syncEvery > 0 {
		awOpts = append(awOpts, stablelog.WithSyncEvery(m.syncEvery))
	}
	if m.syncInterval > 0 {
		awOpts = append(awOpts, stablelog.WithSyncInterval(m.syncInterval))
	}
	if m.logQueueLimit > 0 {
		awOpts = append(awOpts, stablelog.WithQueueLimit(m.logQueueLimit))
	}
	if m.retryN > 0 {
		awOpts = append(awOpts, stablelog.WithRetry(m.retryN, m.retryBackoff))
	}
	m.aw = stablelog.NewAsyncWriter(log, awOpts...)

	m.wg.Add(m.workers)
	for i := 0; i < m.workers; i++ {
		go m.worker()
	}
	return m
}

// Tenant returns the tenant with the given id, creating it on first use.
// The returned tenant must be Init'ed before it can request folds.
func (m *Manager) Tenant(id uint32) *Tenant {
	m.mu.Lock()
	defer m.mu.Unlock()
	t, ok := m.tenants[id]
	if !ok {
		t = &Tenant{id: id, m: m}
		m.tenants[id] = t
	}
	return t
}

// Tenants returns the number of tenants the manager has created.
func (m *Manager) Tenants() int {
	m.mu.Lock()
	defer m.mu.Unlock()
	return len(m.tenants)
}

// admit enqueues a fold request for t. block selects backpressure (wait for
// space) over shedding (errShed); force bypasses the bound entirely (retry
// folds).
func (m *Manager) admit(t *Tenant, weight int, block, force bool) error {
	m.mu.Lock()
	defer m.mu.Unlock()
	if !force && m.queueLimit > 0 {
		for m.queue.Len() >= m.queueLimit && !m.closed {
			if !block {
				return errShed
			}
			m.cond.Wait()
		}
	}
	if m.closed {
		return ErrClosed
	}
	m.queue.Push(t, weight)
	m.cond.Broadcast()
	return nil
}

// worker is one shared fold goroutine: pop the scheduler's next tenant,
// fold it, repeat. Workers drain the queue before exiting on Close.
func (m *Manager) worker() {
	defer m.wg.Done()
	wr := ckpt.NewWriter()
	for {
		m.mu.Lock()
		for m.queue.Len() == 0 && !m.closed {
			m.cond.Wait()
		}
		if m.queue.Len() == 0 {
			m.mu.Unlock()
			return
		}
		t := m.queue.Pop()
		m.running++
		m.mu.Unlock()

		// Clear the coalescing flag before folding, so a mutation landing
		// mid-fold can request the next epoch instead of being swallowed.
		t.mu.Lock()
		t.queued = false
		t.mu.Unlock()

		t.runFold(wr)

		m.mu.Lock()
		m.running--
		m.cond.Broadcast()
		m.mu.Unlock()
	}
}

// ack is the shared acknowledgement mux: decode the wire epoch's tenant id
// and route to that tenant's session. Runs on the AsyncWriter's background
// goroutine; holds no lock across the tenant call.
func (m *Manager) ack(wire uint64, err error) {
	id, _ := SplitEpoch(wire)
	m.mu.Lock()
	t := m.tenants[id]
	m.mu.Unlock()
	if t == nil {
		return
	}
	t.ack(wire, err)
}

// Flush blocks until every pending fold has executed and every submitted
// body has been written, fsynced (under the sync policy), and acknowledged
// — including retry folds scheduled by fold failures. It returns the shared
// writer's sticky error, if any; a nil return means every tenant's session
// has no epoch pending on the log.
func (m *Manager) Flush() error {
	for {
		m.mu.Lock()
		for (m.queue.Len() > 0 || m.running > 0) && !m.closed {
			m.cond.Wait()
		}
		m.mu.Unlock()
		if err := m.aw.Flush(); err != nil {
			return err
		}
		// Acks may have re-marked and retried; only a pass that stays
		// quiet on both sides is a real drain.
		m.mu.Lock()
		quiet := m.queue.Len() == 0 && m.running == 0
		m.mu.Unlock()
		if quiet {
			return nil
		}
	}
}

// Close drains pending folds, stops the workers, closes the shared
// AsyncWriter (final group commit included), and returns its first write
// error, if any. The underlying log stays open — the caller owns it.
func (m *Manager) Close() error {
	m.mu.Lock()
	if m.closed {
		m.mu.Unlock()
		return ErrClosed
	}
	m.closed = true
	m.cond.Broadcast()
	m.mu.Unlock()

	m.wg.Wait()
	return m.aw.Close()
}

// LogStats returns the shared AsyncWriter's acknowledgement counters —
// the service-wide view the per-tenant Stats break down.
func (m *Manager) LogStats() stablelog.AsyncStats {
	return m.aw.Stats()
}

// String summarizes the manager configuration.
func (m *Manager) String() string {
	return fmt.Sprintf("tenant.Manager{workers:%d queue:%d aging:%d}",
		m.workers, m.queueLimit, m.aging)
}
