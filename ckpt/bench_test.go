package ckpt_test

import (
	"testing"

	"ickpt/ckpt"
)

// benchChain builds a box with a 64-element list.
func benchChain(b *testing.B) (*ckpt.Writer, *box) {
	b.Helper()
	d := ckpt.NewDomain()
	root := buildChain(d, 64)
	return ckpt.NewWriter(), root
}

// BenchmarkWriterFull measures the generic driver recording everything.
func BenchmarkWriterFull(b *testing.B) {
	w, root := benchChain(b)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		w.Start(ckpt.Full)
		if err := w.Checkpoint(root); err != nil {
			b.Fatal(err)
		}
		if _, _, err := w.Finish(); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkWriterQuiescent measures pure traversal: incremental mode with
// no modified objects — the cost specialization removes.
func BenchmarkWriterQuiescent(b *testing.B) {
	w, root := benchChain(b)
	w.Start(ckpt.Incremental)
	if err := w.Checkpoint(root); err != nil {
		b.Fatal(err)
	}
	if _, _, err := w.Finish(); err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		w.Start(ckpt.Incremental)
		if err := w.Checkpoint(root); err != nil {
			b.Fatal(err)
		}
		if _, _, err := w.Finish(); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkWriterOneDirty measures an incremental checkpoint with a single
// modified object in the chain.
func BenchmarkWriterOneDirty(b *testing.B) {
	w, root := benchChain(b)
	w.Start(ckpt.Incremental)
	if err := w.Checkpoint(root); err != nil {
		b.Fatal(err)
	}
	if _, _, err := w.Finish(); err != nil {
		b.Fatal(err)
	}
	mid := root.head
	for i := 0; i < 32; i++ {
		mid = mid.next
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		mid.x++
		mid.info.SetModified()
		w.Start(ckpt.Incremental)
		if err := w.Checkpoint(root); err != nil {
			b.Fatal(err)
		}
		if _, _, err := w.Finish(); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkWriterCycleCheck measures the overhead of the traversal-stack
// guard.
func BenchmarkWriterCycleCheck(b *testing.B) {
	d := ckpt.NewDomain()
	root := buildChain(d, 64)
	w := ckpt.NewWriter(ckpt.WithCycleCheck())
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		w.Start(ckpt.Full)
		if err := w.Checkpoint(root); err != nil {
			b.Fatal(err)
		}
		if _, _, err := w.Finish(); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkRebuild measures reconstructing 65 objects from a body.
func BenchmarkRebuild(b *testing.B) {
	d := ckpt.NewDomain()
	root := buildChain(d, 64)
	w := ckpt.NewWriter()
	w.Start(ckpt.Full)
	if err := w.Checkpoint(root); err != nil {
		b.Fatal(err)
	}
	body, _, err := w.Finish()
	if err != nil {
		b.Fatal(err)
	}
	bodyCopy := append([]byte(nil), body...)
	reg := testRegistryQuick()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		rb := ckpt.NewRebuilder(reg)
		if err := rb.Apply(bodyCopy); err != nil {
			b.Fatal(err)
		}
		if _, err := rb.Build(nil); err != nil {
			b.Fatal(err)
		}
	}
}
