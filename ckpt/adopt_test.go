package ckpt_test

import (
	"bytes"
	"testing"

	"ickpt/ckpt"
)

// TestFreshAllocationDegradationTrigger pins the degradation trigger count:
// a single un-adopted allocation under an attached domain is enough to force
// the next Take — and with it the whole epoch — to a Full traversal, while
// zero allocations keep the tracker on the incremental path.
func TestFreshAllocationDegradationTrigger(t *testing.T) {
	d, pts, _, tr := trackedFixture(t, 8)

	// No allocations: Take stays precise, NextMode stays Incremental.
	pts[0].x++
	pts[0].info.Mark()
	if got := len(tr.Take()); got != 1 {
		t.Fatalf("baseline take = %d objects, want 1", got)
	}
	if tr.Degraded() {
		t.Fatal("tracker degraded with no fresh allocations")
	}
	if mode := tr.NextMode(ckpt.Incremental); mode != ckpt.Incremental {
		t.Fatalf("NextMode = %v, want Incremental", mode)
	}

	// Exactly one fresh allocation, never adopted: the very next Take must
	// degrade — the dirty index cannot see the newborn.
	_ = newPoint(d, 9, 9, "orphan")
	pts[1].x++
	pts[1].info.Mark()
	tr.Take()
	if !tr.Degraded() {
		t.Fatal("one un-adopted allocation did not degrade the tracker")
	}
	if mode := tr.NextMode(ckpt.Incremental); mode != ckpt.Full {
		t.Fatalf("NextMode after fresh allocation = %v, want Full", mode)
	}
}

// TestAdoptKeepsIncremental is the churn regression: allocations that are
// adopted at the allocation site settle their fresh debt, so the tracker
// never degrades and the newborn itself is captured by the next dirty fold.
func TestAdoptKeepsIncremental(t *testing.T) {
	d, pts, _, tr := trackedFixture(t, 8)

	// A burst of adopted newborns plus one ordinary mutation.
	borns := make([]*point, 5)
	for i := range borns {
		borns[i] = newPoint(d, int64(100+i), 0, "newborn")
		d.Adopt(borns[i])
	}
	pts[3].y++
	pts[3].info.Mark()

	body, _ := dirtyBody(t, tr, nil)
	if tr.Degraded() {
		t.Fatal("adopted allocations degraded the tracker")
	}
	if mode := tr.NextMode(ckpt.Incremental); mode != ckpt.Incremental {
		t.Fatalf("NextMode = %v, want Incremental", mode)
	}
	var ids []uint64
	if _, err := ckpt.InspectBody(body, func(id uint64, _ ckpt.TypeID, _ []byte) error {
		ids = append(ids, id)
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	want := []uint64{pts[3].info.ID()}
	for _, b := range borns {
		want = append(want, b.info.ID())
	}
	if len(ids) != len(want) {
		t.Fatalf("dirty body has %d records (%v), want %d (%v)", len(ids), ids, len(want), want)
	}
	for i := 1; i < len(ids); i++ {
		if ids[i] <= ids[i-1] {
			t.Fatalf("dirty body ids not ascending: %v", ids)
		}
	}
	seen := make(map[uint64]bool, len(ids))
	for _, id := range ids {
		seen[id] = true
	}
	for _, id := range want {
		if !seen[id] {
			t.Fatalf("object %d missing from dirty body %v", id, ids)
		}
	}

	// Further marks on an adopted newborn keep flowing through the index.
	borns[2].x++
	borns[2].info.Mark()
	taken := tr.Take()
	if len(taken) != 1 || taken[0] != borns[2] {
		t.Fatalf("re-marked newborn not taken: %v", taken)
	}
	if tr.Degraded() {
		t.Fatal("tracker degraded after steady-state newborn mark")
	}
}

// TestAdoptWithoutTracker pins that Adopt is a safe no-op when the domain
// has no tracker attached, so allocation sites can call it unconditionally.
func TestAdoptWithoutTracker(t *testing.T) {
	d := ckpt.NewDomain()
	p := newPoint(d, 1, 2, "x")
	d.Adopt(p) // must not panic or register anywhere
	if !p.info.Modified() {
		t.Fatal("new object lost its modified flag")
	}
}

// TestScratchAndZeroCopyBodiesIdentical pins the zero-copy encode contract:
// the default direct path (reserve a length placeholder, encode the payload
// in place, patch) produces bodies byte-identical to the scratch-copy
// baseline — across full and incremental modes and across the patch size
// classes (payloads under and over 128 bytes).
func TestScratchAndZeroCopyBodiesIdentical(t *testing.T) {
	build := func(opts ...ckpt.WriterOption) [][]byte {
		d := ckpt.NewDomain()
		small := newPoint(d, 1, 2, "s")
		big := newPoint(d, 3, 4, string(bytes.Repeat([]byte("x"), 300)))
		small.next = big
		w := ckpt.NewWriter(opts...)
		var bodies [][]byte
		for _, mode := range []ckpt.Mode{ckpt.Full, ckpt.Incremental, ckpt.Incremental} {
			if mode == ckpt.Incremental {
				small.x++
				small.info.SetModified()
				big.label += "y"
				big.info.SetModified()
			}
			w.Start(mode)
			if err := w.Checkpoint(small); err != nil {
				t.Fatal(err)
			}
			body, _, err := w.Finish()
			if err != nil {
				t.Fatal(err)
			}
			bodies = append(bodies, append([]byte(nil), body...))
		}
		return bodies
	}
	direct := build()
	scratch := build(ckpt.WithScratchEncode())
	if len(direct) != len(scratch) {
		t.Fatalf("body counts differ: %d vs %d", len(direct), len(scratch))
	}
	for i := range direct {
		if !bytes.Equal(direct[i], scratch[i]) {
			t.Fatalf("body %d: zero-copy and scratch streams differ (%d vs %d bytes)",
				i, len(direct[i]), len(scratch[i]))
		}
	}
}
