package ckpt_test

import (
	"errors"
	"fmt"
	"sync"
	"testing"

	"ickpt/ckpt"
	"ickpt/wire"
)

// tripwire is a checkpointable whose Fold fails on demand after its own
// record was already framed — the mid-traversal failure that clears flags
// and then dooms the body.
type tripwire struct {
	info ckpt.Info
	fail error
}

func newTripwire(d *ckpt.Domain, fail error) *tripwire {
	return &tripwire{info: ckpt.NewInfo(d), fail: fail}
}

func (tw *tripwire) CheckpointInfo() *ckpt.Info    { return &tw.info }
func (tw *tripwire) CheckpointTypeID() ckpt.TypeID { return ckpt.TypeIDOf("ckpttest.tripwire") }
func (tw *tripwire) Record(e *wire.Encoder)        { e.Varint(1) }
func (tw *tripwire) Fold(w *ckpt.Writer) error     { return tw.fail }

// modifiedRoots builds a domain with n modified points plus one tripwire
// appended last, all as separate roots.
func sessionFixture(n int, fail error) (*ckpt.Domain, []ckpt.Checkpointable) {
	d := ckpt.NewDomain()
	roots := make([]ckpt.Checkpointable, 0, n+1)
	for i := 0; i < n; i++ {
		p := newPoint(d, int64(i), int64(i), "s")
		p.info.SetModified()
		roots = append(roots, p)
	}
	if fail != nil {
		tw := newTripwire(d, fail)
		tw.info.SetModified()
		roots = append(roots, tw)
	}
	return d, roots
}

func modifiedCount(roots []ckpt.Checkpointable) int {
	n := 0
	for _, r := range roots {
		if r.CheckpointInfo().Modified() {
			n++
		}
	}
	return n
}

// TestSessionCommitAndAbort: a successful epoch's clear-set stays pending
// until the session resolves it; Commit drops it, Abort re-marks it.
func TestSessionCommitAndAbort(t *testing.T) {
	for _, commit := range []bool{true, false} {
		name := "abort"
		if commit {
			name = "commit"
		}
		t.Run(name, func(t *testing.T) {
			_, roots := sessionFixture(4, nil)
			s := ckpt.NewSession()
			w := ckpt.NewWriter(ckpt.WithSession(s))
			w.Start(ckpt.Incremental)
			for _, r := range roots {
				if err := w.Checkpoint(r); err != nil {
					t.Fatal(err)
				}
			}
			body, _, err := w.Finish()
			if err != nil || len(body) == 0 {
				t.Fatalf("Finish = %d bytes, %v", len(body), err)
			}
			if got := modifiedCount(roots); got != 0 {
				t.Fatalf("%d flags still set after encode, want 0", got)
			}
			if s.Pending() != 1 {
				t.Fatalf("pending = %d, want 1", s.Pending())
			}
			if commit {
				if !s.Commit(w.Epoch()) {
					t.Fatal("Commit reported epoch not pending")
				}
				if got := modifiedCount(roots); got != 0 {
					t.Fatalf("commit re-marked %d flags", got)
				}
			} else {
				if got := s.Abort(w.Epoch()); got != 4 {
					t.Fatalf("Abort re-marked %d, want 4", got)
				}
				if got := modifiedCount(roots); got != 4 {
					t.Fatalf("%d flags set after abort, want 4", got)
				}
			}
			if s.Pending() != 0 {
				t.Fatalf("pending = %d after resolve, want 0", s.Pending())
			}
		})
	}
}

// TestFinishRefusesHalfBuiltBody pins the contract that a failed fold never
// hands out a truncated body: Finish returns a nil body and the visit error,
// and the flags the partial encode cleared are re-marked so the next
// incremental checkpoint recaptures the state the discarded body carried.
func TestFinishRefusesHalfBuiltBody(t *testing.T) {
	boom := errors.New("boom")
	for _, withSession := range []bool{false, true} {
		t.Run(fmt.Sprintf("session=%v", withSession), func(t *testing.T) {
			_, roots := sessionFixture(3, boom)
			var opts []ckpt.WriterOption
			s := ckpt.NewSession()
			if withSession {
				opts = append(opts, ckpt.WithSession(s))
			}
			w := ckpt.NewWriter(opts...)
			w.Start(ckpt.Incremental)
			sawErr := false
			for _, r := range roots {
				if err := w.Checkpoint(r); err != nil {
					sawErr = true
				}
			}
			if !sawErr {
				t.Fatal("no Checkpoint call failed")
			}
			body, _, err := w.Finish()
			if !errors.Is(err, boom) {
				t.Fatalf("Finish error = %v, want wrapped boom", err)
			}
			if body != nil {
				t.Fatalf("Finish returned a %d-byte half-built body, want nil", len(body))
			}
			// All four objects were recorded (the tripwire fails in Fold,
			// after its own record) — every cleared flag must be back.
			if got := modifiedCount(roots); got != 4 {
				t.Fatalf("%d flags set after failed Finish, want 4", got)
			}
			if withSession {
				st := s.Stats()
				if st.Aborts != 1 || st.Remarked != 4 || s.Pending() != 0 {
					t.Fatalf("session stats = %+v, pending = %d; want 1 abort re-marking 4", st, s.Pending())
				}
			}
		})
	}
}

// TestStartAbandonsUnfinishedEpoch: Start over a body in progress aborts it —
// the discarded records' flags are re-marked, not silently lost.
func TestStartAbandonsUnfinishedEpoch(t *testing.T) {
	_, roots := sessionFixture(3, nil)
	w := ckpt.NewWriter()
	w.Start(ckpt.Incremental)
	for _, r := range roots {
		if err := w.Checkpoint(r); err != nil {
			t.Fatal(err)
		}
	}
	if got := modifiedCount(roots); got != 0 {
		t.Fatalf("%d flags set mid-epoch, want 0", got)
	}
	w.Start(ckpt.Incremental) // discard without Finish
	if got := modifiedCount(roots); got != 3 {
		t.Fatalf("%d flags set after abandoned Start, want 3 re-marked", got)
	}
	if _, _, err := w.Finish(); err != nil {
		t.Fatalf("empty Finish: %v", err)
	}
}

// TestSessionAck routes persistence acknowledgements: nil commits, an error
// aborts — the glue between the session and stablelog.WithAck.
func TestSessionAck(t *testing.T) {
	_, roots := sessionFixture(2, nil)
	s := ckpt.NewSession()
	w := ckpt.NewWriter(ckpt.WithSession(s))

	w.Start(ckpt.Incremental)
	for _, r := range roots {
		if err := w.Checkpoint(r); err != nil {
			t.Fatal(err)
		}
	}
	if _, _, err := w.Finish(); err != nil {
		t.Fatal(err)
	}
	s.Ack(w.Epoch(), nil)
	if got := modifiedCount(roots); got != 0 {
		t.Fatalf("nil ack re-marked %d flags", got)
	}

	for _, r := range roots {
		r.CheckpointInfo().SetModified()
	}
	w.Start(ckpt.Incremental)
	for _, r := range roots {
		if err := w.Checkpoint(r); err != nil {
			t.Fatal(err)
		}
	}
	if _, _, err := w.Finish(); err != nil {
		t.Fatal(err)
	}
	s.Ack(w.Epoch(), errors.New("disk on fire"))
	if got := modifiedCount(roots); got != 2 {
		t.Fatalf("error ack re-marked %d flags, want 2", got)
	}
	st := s.Stats()
	if st.Commits != 1 || st.Aborts != 1 {
		t.Fatalf("stats = %+v, want 1 commit + 1 abort", st)
	}
}

// TestSessionAbortAll aborts every in-flight epoch at once — the teardown
// path after a sticky sink error.
func TestSessionAbortAll(t *testing.T) {
	_, rootsA := sessionFixture(2, nil)
	_, rootsB := sessionFixture(3, nil)
	s := ckpt.NewSession()
	w := ckpt.NewWriter(ckpt.WithSession(s))
	for _, roots := range [][]ckpt.Checkpointable{rootsA, rootsB} {
		w.Start(ckpt.Incremental)
		for _, r := range roots {
			if err := w.Checkpoint(r); err != nil {
				t.Fatal(err)
			}
		}
		if _, _, err := w.Finish(); err != nil {
			t.Fatal(err)
		}
	}
	if s.Pending() != 2 {
		t.Fatalf("pending = %d, want 2", s.Pending())
	}
	if got := s.AbortAll(); got != 5 {
		t.Fatalf("AbortAll re-marked %d, want 5", got)
	}
	if got := modifiedCount(rootsA) + modifiedCount(rootsB); got != 5 {
		t.Fatalf("%d flags set after AbortAll, want 5", got)
	}
}

// TestSessionResolverAndDegradation: an abort resolves ids through the
// session's resolver; ids it cannot cover degrade the session, NextMode
// forces Full until a Full epoch commits.
func TestSessionResolverAndDegradation(t *testing.T) {
	_, roots := sessionFixture(3, nil)
	idx, err := ckpt.IndexRoots(roots...)
	if err != nil {
		t.Fatal(err)
	}
	if idx.Len() != 3 {
		t.Fatalf("index covers %d objects, want 3", idx.Len())
	}
	// Resolver that loses the last root, as if it were freed after encode.
	lost := roots[2].CheckpointInfo().ID()
	s := ckpt.NewSession(ckpt.WithInfoResolver(func(id uint64) *ckpt.Info {
		if id == lost {
			return nil
		}
		return idx.Resolve(id)
	}))
	w := ckpt.NewWriter(ckpt.WithSession(s))
	w.Start(ckpt.Incremental)
	for _, r := range roots {
		if err := w.Checkpoint(r); err != nil {
			t.Fatal(err)
		}
	}
	if _, _, err := w.Finish(); err != nil {
		t.Fatal(err)
	}
	if got := s.Abort(w.Epoch()); got != 2 {
		t.Fatalf("Abort re-marked %d, want 2 (one id unresolved)", got)
	}
	if !s.Degraded() {
		t.Fatal("session not degraded after unresolved id")
	}
	if got := s.NextMode(ckpt.Incremental); got != ckpt.Full {
		t.Fatalf("NextMode(Incremental) = %v while degraded, want Full", got)
	}
	st := s.Stats()
	if st.Unresolved != 1 || st.ForcedFull != 1 {
		t.Fatalf("stats = %+v, want 1 unresolved + 1 forced full", st)
	}

	// A committed Full epoch recaptures everything live: degradation clears.
	w.Start(s.NextMode(ckpt.Incremental))
	for _, r := range roots {
		if err := w.Checkpoint(r); err != nil {
			t.Fatal(err)
		}
	}
	if _, _, err := w.Finish(); err != nil {
		t.Fatal(err)
	}
	s.Commit(w.Epoch())
	if s.Degraded() {
		t.Fatal("session still degraded after committed Full epoch")
	}
	if got := s.NextMode(ckpt.Incremental); got != ckpt.Incremental {
		t.Fatalf("NextMode after recovery = %v, want Incremental", got)
	}
}

// TestSessionObserveMergesRetake: observing an epoch already pending merges
// the clear-sets, so a retake under the same epoch number after a partial
// failure aborts as one unit.
func TestSessionObserveMergesRetake(t *testing.T) {
	_, roots := sessionFixture(2, nil)
	s := ckpt.NewSession()
	a, b := roots[0].CheckpointInfo(), roots[1].CheckpointInfo()
	s.Observe(7, ckpt.Incremental, []ckpt.ClearEntry{{ID: a.ID(), Info: a}})
	s.Observe(7, ckpt.Incremental, []ckpt.ClearEntry{{ID: b.ID(), Info: b}})
	if got := s.Stats().Epochs; got != 1 {
		t.Fatalf("epochs = %d, want 1 (merged)", got)
	}
	a.ResetModified()
	b.ResetModified()
	if got := s.Abort(7); got != 2 {
		t.Fatalf("Abort re-marked %d, want both merged entries", got)
	}
}

// TestIndexRootsDoesNotDisturbFlags: building the abort-time index traverses
// the graph without recording anything or touching any modified flag.
func TestIndexRootsDoesNotDisturbFlags(t *testing.T) {
	d := ckpt.NewDomain()
	head := newPoint(d, 1, 2, "head")
	head.next = newPoint(d, 3, 4, "tail")
	b := newBox(d, 9)
	b.head = head
	// Mixed flag states must survive indexing: only head is dirty.
	b.info.ResetModified()
	head.next.info.ResetModified()
	head.info.SetModified()

	idx, err := ckpt.IndexRoots(b)
	if err != nil {
		t.Fatal(err)
	}
	if idx.Len() != 3 {
		t.Fatalf("index covers %d objects, want 3", idx.Len())
	}
	if !head.info.Modified() || head.next.info.Modified() || b.info.Modified() {
		t.Fatal("IndexRoots disturbed modified flags")
	}
	if got := idx.Resolve(head.info.ID()); got != &head.info {
		t.Fatal("Resolve returned the wrong Info")
	}
	if got := idx.Resolve(1 << 40); got != nil {
		t.Fatalf("Resolve of unknown id = %v, want nil", got)
	}
}

// TestSessionConcurrentAcks exercises the session's concurrency contract
// under the race detector: acknowledgements arrive from background writer
// goroutines while the application observes new epochs and polls the mode.
func TestSessionConcurrentAcks(t *testing.T) {
	d := ckpt.NewDomain()
	infos := make([]ckpt.Info, 64)
	for i := range infos {
		infos[i] = ckpt.NewInfo(d)
	}
	s := ckpt.NewSession()
	var wg sync.WaitGroup
	for g := 0; g < 4; g++ {
		g := g
		wg.Add(1)
		go func() {
			defer wg.Done()
			for e := uint64(1); e <= 50; e++ {
				epoch := uint64(g)*1000 + e
				info := &infos[int(epoch)%len(infos)]
				s.Observe(epoch, ckpt.Incremental,
					[]ckpt.ClearEntry{{ID: info.ID(), Info: info}})
				if e%3 == 0 {
					s.Ack(epoch, errors.New("lost"))
				} else {
					s.Ack(epoch, nil)
				}
				s.NextMode(ckpt.Incremental)
				s.Degraded()
			}
		}()
	}
	wg.Wait()
	st := s.Stats()
	if st.Epochs != 200 || st.Commits+st.Aborts != 200 || s.Pending() != 0 {
		t.Fatalf("stats = %+v, pending = %d; want 200 epochs all resolved", st, s.Pending())
	}
}
