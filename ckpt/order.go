package ckpt

import "sort"

// SortRoots sorts roots in place by ascending checkpoint id. This is the
// canonical root order: the order a sequential fold visits independent roots
// and the order the parallel fold merges per-root chunks, so the two produce
// byte-identical bodies. Workload builders that hand out roots in issue order
// are already canonical; SortRoots makes the ordering explicit for callers
// that collected roots from a map or other unordered source.
func SortRoots(roots []Checkpointable) {
	sort.Slice(roots, func(i, j int) bool {
		return roots[i].CheckpointInfo().ID() < roots[j].CheckpointInfo().ID()
	})
}
