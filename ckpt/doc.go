// Package ckpt implements language-level incremental checkpointing of object
// graphs, following the discipline of Lawall & Muller, "Efficient Incremental
// Checkpointing of Java Programs" (DSN 2000).
//
// # Model
//
// A checkpointable object carries an [Info]: a unique identifier issued by a
// [Domain], and a modified flag. Objects implement [Checkpointable]:
//
//   - CheckpointInfo returns the object's Info,
//   - Record writes the object's local state — scalar fields plus the ids of
//     its checkpointable children — to a wire.Encoder,
//   - Fold recursively applies the checkpoint writer to the children.
//
// A [Writer] drives checkpointing. In [Full] mode every visited object is
// recorded. In [Incremental] mode only objects whose modified flag is set are
// recorded; the flag is reset as the object is recorded, so the next
// incremental checkpoint captures only subsequent mutations. Either way the
// whole reachable structure is traversed (the traversal itself is the cost
// that the spec package's program specialization removes).
//
// # Checkpoint bodies
//
// A checkpoint body is a byte slice: a small header (format version, mode,
// epoch) followed by framed object records. Bodies are self-describing and
// can be persisted with package stablelog. A [Rebuilder] folds a base full
// checkpoint plus any number of subsequent incremental bodies into the most
// recent state, then materializes the object graph through a [Registry] of
// type factories.
//
// # Mutation tracking
//
// Go has no write barriers, so the modified flag is maintained at the
// language level, exactly as in the paper: either call Info.SetModified in
// your setters, or wrap fields in [Cell], whose Set method marks the owning
// Info.
//
// The writer, infos and cells are not safe for concurrent use; checkpointing
// uses a blocking protocol (mutators must be quiescent during a checkpoint),
// matching the paper's assumptions.
package ckpt
