// Package ckpt implements language-level incremental checkpointing of object
// graphs, following the discipline of Lawall & Muller, "Efficient Incremental
// Checkpointing of Java Programs" (DSN 2000).
//
// # Model
//
// A checkpointable object carries an [Info]: a unique identifier issued by a
// [Domain], and a modified flag. Objects implement [Checkpointable]:
//
//   - CheckpointInfo returns the object's Info,
//   - Record writes the object's local state — scalar fields plus the ids of
//     its checkpointable children — to a wire.Encoder,
//   - Fold recursively applies the checkpoint writer to the children.
//
// A [Writer] drives checkpointing. In [Full] mode every visited object is
// recorded. In [Incremental] mode only objects whose modified flag is set are
// recorded; the flag is reset as the object is recorded, so the next
// incremental checkpoint captures only subsequent mutations. Either way the
// whole reachable structure is traversed (the traversal itself is the cost
// that the spec package's program specialization removes).
//
// # Checkpoint bodies
//
// A checkpoint body is a byte slice: a small header (format version, mode,
// epoch) followed by framed object records. Bodies are self-describing and
// can be persisted with package stablelog. A [Rebuilder] folds a base full
// checkpoint plus any number of subsequent incremental bodies into the most
// recent state, then materializes the object graph through a [Registry] of
// type factories.
//
// # Mutation tracking
//
// Go has no write barriers, so the modified flag is maintained at the
// language level, exactly as in the paper: either call Info.SetModified in
// your setters, or wrap fields in [Cell], whose Set method marks the owning
// Info.
//
// The writer, infos and cells are not safe for concurrent use; checkpointing
// uses a blocking protocol (mutators must be quiescent during a checkpoint),
// matching the paper's assumptions.
//
// # The dirty index: O(dirty) incremental checkpoints
//
// Even in Incremental mode the generic driver traverses the whole reachable
// structure to discover which flags are set, so an epoch's floor is the live
// object count. A [Tracker] removes that floor: once a Domain is attached
// ([Domain.AttachTracker]) and the live graph registered ([Tracker.Watch]),
// [Info.Mark] — the same write barrier [Cell.Set] already invokes — also
// enqueues the object into the tracker's mark-queue, and
// [Writer.CheckpointDirty] folds exactly that queue in canonical
// ascending-id order, producing a body byte-identical to the traversal's.
// Any engine's per-object routine can serve as the [EmitOne]; a nil emit
// takes the fused virtual path.
//
// The index never guesses: objects it cannot vouch for (allocations made
// after Watch and never Tracked, identity mismatches between the registered
// object and the marked Info) degrade the tracker, [Tracker.NextMode]
// forces one Full traversal, and Watch re-arms O(dirty) operation.
//
// # Failure atomicity: the epoch commit/abort protocol
//
// Clearing a modified flag is a bet that the body being encoded will reach
// stable storage. If the body is lost — a fold error, a failed append, a
// failed fsync — the cleared flags become lost updates: the next incremental
// checkpoint skips exactly the objects whose latest state was just lost.
// [Session] makes the bet safe. The emitter records every cleared id into a
// per-epoch clear-set; a writer built [WithSession] hands each epoch's
// clear-set to the session, where it stays pending until the caller resolves
// it:
//
//   - [Session.Commit] once the body is durable — the flags stay cleared;
//   - [Session.Abort] if the body is lost — every cleared flag is re-marked,
//     so the next incremental checkpoint recaptures the lost state;
//   - [Session.Ack] adapts both to an (epoch, error) callback, matching
//     stablelog's asynchronous acknowledgement.
//
// The writer aborts on its own when a fold fails ([Writer.Finish] refuses a
// half-built body) or when [Writer.Start] discards an unfinished body. If an
// abort cannot re-mark an object (no captured Info and no [InfoResolver]
// match), the session degrades and [Session.NextMode] forces the next
// checkpoint to Full — the safe fallback. See docs/DURABILITY.md for the
// end-to-end contract including the log.
//
// # Memory model for parallel folding
//
// Package parfold folds disjoint subtrees of the registered graph on a pool
// of workers, each driving its own Writer. No lock or atomic guards the Info
// modified flag — that would tax the sequential fast path the paper is about
// — so the parallel fold is sound only under the following contract:
//
//   - Quiescence. Mutators are stopped for the duration of the fold, exactly
//     as in the sequential blocking protocol. The fork (starting the worker
//     goroutines) and the join (sync.WaitGroup.Wait before the merge) give
//     the happens-before edges: mutations before the fold are visible to
//     every worker, and flag resets by workers are visible to mutators that
//     resume after the fold returns.
//   - Disjoint roots. Every object must be reachable from exactly one of the
//     roots handed to the fold. Two roots sharing a descendant would race on
//     its modified flag from two workers, and — worse for correctness — the
//     sequential fold records a shared object once (the first visit clears
//     the flag) while a parallel fold could record it twice, diverging from
//     the sequential bytes. The difftest harness checks this property cannot
//     bite on the shipped workloads; the race detector enforces it on any
//     new one.
//
// Within one worker everything is ordinary sequential Go; across workers the
// only shared state is the per-root chunk table, written at distinct indices
// and published by the join.
package ckpt
