package ckpt

import "ickpt/wire"

// Checkpoint body layout:
//
//	header:  version byte, mode byte, epoch uvarint
//	records: (id uvarint, typeID uvarint, payloadLen uvarint, payload)*
//
// The payload of a record is exactly what the object's Record method wrote.
const bodyVersion = 1

// Stats accumulates counters for one checkpoint.
type Stats struct {
	// Visited counts objects traversed (recorded or not).
	Visited int
	// Recorded counts objects whose state was written.
	Recorded int
	// Skipped counts objects whose modified flag was tested and found
	// clear.
	Skipped int
	// Bytes is the total body size, including header and framing.
	Bytes int
}

// Add accumulates the counters of o into s. Bytes is summed like the other
// counters; callers merging shard bodies under a single header (package
// parfold) overwrite it with the merged length afterwards.
func (s *Stats) Add(o Stats) {
	s.Visited += o.Visited
	s.Recorded += o.Recorded
	s.Skipped += o.Skipped
	s.Bytes += o.Bytes
}

// AppendBodyHeader writes the checkpoint body header — format version, mode,
// epoch — to dst. It is the one place the header is encoded: Emitter.Reset
// uses it, and the parfold merge uses it to frame shard bodies produced with
// ResetShard under a single header.
func AppendBodyHeader(dst *wire.Encoder, mode Mode, epoch uint64) {
	dst.Byte(bodyVersion)
	dst.Byte(byte(mode))
	dst.Uvarint(epoch)
}

// Emitter frames object records into a checkpoint body. It is the shared
// low-level sink used by the generic Writer, by compiled specialization
// plans, and by generated specialized checkpoint functions, guaranteeing
// that all of them produce byte-identical streams.
//
// By default records are encoded zero-copy: Begin writes the id and type to
// the destination, reserves a one-byte length placeholder, and hands the
// destination encoder straight to Record; End patches the placeholder
// (wire.Encoder.PatchUvarint), shifting the payload only when it runs 128
// bytes or longer. The older scratch path — encode the payload into a
// per-emitter scratch buffer, then copy it behind a computed prefix — is
// retained behind SetScratchEncode as the measurable baseline; both paths
// produce byte-identical bodies.
type Emitter struct {
	dst     *wire.Encoder
	scratch wire.Encoder
	stats   Stats
	clears  []ClearEntry

	curID       uint64
	curType     TypeID
	lenPos      int
	scratchMode bool
	open        bool
}

// SetScratchEncode switches the emitter between the zero-copy encode path
// (false, the default) and the scratch-copy baseline (true): payloads built
// in a scratch buffer and copied behind a precomputed length prefix. The two
// paths produce byte-identical bodies; the scratch path exists so the copy
// tax stays measurable (cmd/ckptbench -experiment interp). Must not be
// called between Begin and End.
func (em *Emitter) SetScratchEncode(on bool) { em.scratchMode = on }

// Reset points the emitter at dst, writes the body header, and clears the
// statistics.
func (em *Emitter) Reset(dst *wire.Encoder, mode Mode, epoch uint64) {
	em.ResetShard(dst)
	AppendBodyHeader(dst, mode, epoch)
}

// ResetShard points the emitter at dst and clears the statistics without
// writing a body header. The records framed afterwards form a shard body: a
// headerless run of records that a merge step (package parfold) concatenates
// with other shard bodies under one AppendBodyHeader to reconstitute a
// complete checkpoint body.
func (em *Emitter) ResetShard(dst *wire.Encoder) {
	em.dst = dst
	em.stats = Stats{}
	// The clear-set backing array is recycled: keep one the emitter still
	// owns, otherwise draw from the pool that Commit/Abort retire into, so a
	// steady-state epoch never allocates one (see getClears).
	if em.clears != nil {
		em.clears = em.clears[:0]
	} else {
		em.clears = getClears()
	}
	em.open = false
}

// Begin starts the record for one object and returns the encoder into which
// the object's payload (its Record output) must be written. Each Begin must
// be paired with End before the next Begin.
//
// Begin is also where the epoch's clear-set is captured: if the object's
// modified flag is set now, the caller is about to record the object and
// clear the flag (every engine — Emit/EmitIfModified, reflectckpt, compiled
// plans, generated routines — funnels through Begin before it resets the
// flag), so the object's id and Info are appended to the clear-set for
// commit/abort accounting. See Session.
func (em *Emitter) Begin(info *Info, t TypeID) *wire.Encoder {
	if info.Modified() {
		em.clears = append(em.clears, ClearEntry{ID: info.ID(), Info: info})
	}
	em.open = true
	if em.scratchMode {
		em.curID = info.ID()
		em.curType = t
		em.scratch.Reset()
		return &em.scratch
	}
	em.dst.Uvarint(info.ID())
	em.dst.Uvarint(uint64(t))
	em.lenPos = em.dst.ReserveUvarint()
	return em.dst
}

// End frames the payload started by Begin into the destination stream: on
// the zero-copy path it patches the reserved length prefix in place; on the
// scratch path it copies the scratch payload behind a computed prefix.
func (em *Emitter) End() {
	if em.scratchMode {
		em.dst.Uvarint(em.curID)
		em.dst.Uvarint(uint64(em.curType))
		em.dst.Uvarint(uint64(em.scratch.Len()))
		em.dst.Raw(em.scratch.Bytes())
	} else {
		em.dst.PatchUvarint(em.lenPos)
	}
	em.stats.Recorded++
	em.open = false
}

// Emit records o unconditionally: Begin, o.Record, End, and clears the
// modified flag.
func (em *Emitter) Emit(o Checkpointable) {
	info := o.CheckpointInfo()
	p := em.Begin(info, o.CheckpointTypeID())
	o.Record(p)
	em.End()
	info.ResetModified()
}

// EmitIfModified records o only if its modified flag is set, and reports
// whether it did.
func (em *Emitter) EmitIfModified(o Checkpointable) bool {
	info := o.CheckpointInfo()
	if !info.Modified() {
		em.stats.Skipped++
		return false
	}
	p := em.Begin(info, o.CheckpointTypeID())
	o.Record(p)
	em.End()
	info.ResetModified()
	return true
}

// Visit counts a traversed object. Callers that use Emit/EmitIfModified
// should call Visit once per object for accurate statistics.
func (em *Emitter) Visit() { em.stats.Visited++ }

// Skip counts an object whose modified flag was tested and found clear, for
// callers that perform the test themselves (specialized plans).
func (em *Emitter) Skip() { em.stats.Skipped++ }

// Clears returns the clear-set accumulated since Reset: one entry per
// object whose modified flag was set when its record began. The slice is
// owned by the emitter; TakeClears transfers ownership.
func (em *Emitter) Clears() []ClearEntry { return em.clears }

// TakeClears returns the accumulated clear-set and detaches it from the
// emitter, transferring ownership to the caller (a Writer finishing an
// epoch, or a parallel fold gathering per-worker sets).
func (em *Emitter) TakeClears() []ClearEntry {
	c := em.clears
	em.clears = nil
	return c
}

// Stats returns the counters accumulated since Reset, with Bytes set to the
// destination length so far.
func (em *Emitter) Stats() Stats {
	s := em.stats
	if em.dst != nil {
		s.Bytes = em.dst.Len()
	}
	return s
}

// bodyHeader is the decoded checkpoint body header.
type bodyHeader struct {
	version byte
	mode    Mode
	epoch   uint64
}

// record is one framed object record within a body. The payload aliases the
// body buffer.
type record struct {
	id      uint64
	typeID  TypeID
	payload []byte
}

// parseBodyHeader reads the header and leaves d positioned at the first
// record.
func parseBodyHeader(d *wire.Decoder) (bodyHeader, error) {
	var h bodyHeader
	h.version = d.Byte()
	h.mode = Mode(d.Byte())
	h.epoch = d.Uvarint()
	if err := d.Err(); err != nil {
		return h, err
	}
	if h.version != bodyVersion {
		return h, ErrBadBody
	}
	if h.mode != Full && h.mode != Incremental {
		return h, ErrBadBody
	}
	return h, nil
}

// nextRecord reads one framed record. It returns ok=false at a clean end of
// body.
func nextRecord(d *wire.Decoder) (rec record, ok bool, err error) {
	if d.Len() == 0 {
		return record{}, false, nil
	}
	rec.id = d.Uvarint()
	rec.typeID = TypeID(d.Uvarint())
	n := d.Uvarint()
	if err := d.Err(); err != nil {
		return record{}, false, err
	}
	if n > uint64(d.Len()) {
		return record{}, false, ErrBadBody
	}
	rec.payload = d.Raw(int(n))
	if err := d.Err(); err != nil {
		return record{}, false, err
	}
	return rec, true, nil
}
