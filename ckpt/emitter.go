package ckpt

import "ickpt/wire"

// Checkpoint body layout:
//
//	header:  version byte, mode byte, epoch uvarint
//	records: (id uvarint, typeID uvarint, payloadLen uvarint, payload)*
//
// The payload of a record is exactly what the object's Record method wrote.
//
// Version 2 — written only by delta-enabled emitters (WithDeltaEncoding /
// WithShadowCache) — inserts a kind byte between the type and the length:
//
//	records: (id uvarint, typeID uvarint, kind byte, payloadLen uvarint, payload)*
//
// kind wire.KindFull payloads are Record output as in version 1; kind
// wire.KindDelta payloads are a copy/patch opcode stream (wire.AppendDelta)
// against the object's previous payload in the stream. Writers without a
// shadow cache keep producing version 1, byte-identical to before.
const (
	bodyVersion  = 1
	bodyVersion2 = 2
)

// Stats accumulates counters for one checkpoint.
type Stats struct {
	// Visited counts objects traversed (recorded or not).
	Visited int
	// Recorded counts objects whose state was written.
	Recorded int
	// Skipped counts objects whose modified flag was tested and found
	// clear.
	Skipped int
	// Deltas counts recorded objects shipped as payload deltas
	// (wire.KindDelta) rather than full payloads.
	Deltas int
	// Bytes is the total body size, including header and framing.
	Bytes int
}

// Add accumulates the counters of o into s. Bytes is summed like the other
// counters; callers merging shard bodies under a single header (package
// parfold) overwrite it with the merged length afterwards.
func (s *Stats) Add(o Stats) {
	s.Visited += o.Visited
	s.Recorded += o.Recorded
	s.Skipped += o.Skipped
	s.Deltas += o.Deltas
	s.Bytes += o.Bytes
}

// AppendBodyHeader writes the checkpoint body header — format version, mode,
// epoch — to dst. It is the one place the header is encoded: Emitter.Reset
// uses it, and the parfold merge uses it to frame shard bodies produced with
// ResetShard under a single header.
func AppendBodyHeader(dst *wire.Encoder, mode Mode, epoch uint64) {
	dst.Byte(bodyVersion)
	dst.Byte(byte(mode))
	dst.Uvarint(epoch)
}

// AppendDeltaBodyHeader writes the version-2 body header that frames
// kind-carrying records. Delta-enabled emitters use it in Reset, and the
// parfold merge uses it when its workers' shard writers carry a shadow
// cache.
func AppendDeltaBodyHeader(dst *wire.Encoder, mode Mode, epoch uint64) {
	dst.Byte(bodyVersion2)
	dst.Byte(byte(mode))
	dst.Uvarint(epoch)
}

// Emitter frames object records into a checkpoint body. It is the shared
// low-level sink used by the generic Writer, by compiled specialization
// plans, and by generated specialized checkpoint functions, guaranteeing
// that all of them produce byte-identical streams.
//
// By default records are encoded zero-copy: Begin writes the id and type to
// the destination, reserves a one-byte length placeholder, and hands the
// destination encoder straight to Record; End patches the placeholder
// (wire.Encoder.PatchUvarint), shifting the payload only when it runs 128
// bytes or longer. The older scratch path — encode the payload into a
// per-emitter scratch buffer, then copy it behind a computed prefix — is
// retained behind SetScratchEncode as the measurable baseline; both paths
// produce byte-identical bodies.
type Emitter struct {
	dst     *wire.Encoder
	scratch wire.Encoder
	stats   Stats
	clears  []ClearEntry

	curID       uint64
	curInfo     *Info
	curType     TypeID
	lenPos      int
	scratchMode bool
	open        bool

	// Delta encoding state. When shadow is non-nil the emitter frames
	// version-2 records (with a kind byte) and diffs each payload larger
	// than the cache's threshold against the object's shadow, shipping the
	// delta when it wins (see ShadowCache). mode gates the diff: Full
	// bodies never carry deltas. shadowPends accumulates the epoch's
	// payload copies; the driver stages them at Finish and the cache
	// promotes them only when the epoch commits.
	shadow      *ShadowCache
	mode        Mode
	deltaBuf    wire.Encoder
	shadowPends []ShadowStage
	kindPos     int
	// shadowSkips counts emits the churn backoff left undiffed (consumed
	// from Info.shadowSkip without touching the cache); TakeShadowStages
	// flushes it into the cache's stats once per epoch.
	shadowSkips int
}

// SetScratchEncode switches the emitter between the zero-copy encode path
// (false, the default) and the scratch-copy baseline (true): payloads built
// in a scratch buffer and copied behind a precomputed length prefix. The two
// paths produce byte-identical bodies; the scratch path exists so the copy
// tax stays measurable (cmd/ckptbench -experiment interp). Must not be
// called between Begin and End.
func (em *Emitter) SetScratchEncode(on bool) { em.scratchMode = on }

// SetShadow attaches (or detaches, with nil) the shadow cache that switches
// the emitter into delta-enabled version-2 framing. Must not be called
// between Begin and End; Writer options (WithDeltaEncoding, WithShadowCache)
// are the usual entry point.
func (em *Emitter) SetShadow(c *ShadowCache) { em.shadow = c }

// TakeShadowStages returns the payload copies accumulated for the epoch in
// progress and detaches them, transferring ownership to the caller: a Writer
// finishing an epoch stages them (ShadowCache.Stage), a parallel fold
// gathers per-worker batches and stages the merged epoch as one, and a
// failed epoch's driver discards them (ShadowCache.Discard).
func (em *Emitter) TakeShadowStages() []ShadowStage {
	if em.shadowSkips > 0 && em.shadow != nil {
		em.shadow.addSkipped(em.shadowSkips)
		em.shadowSkips = 0
	}
	p := em.shadowPends
	em.shadowPends = nil
	return p
}

// Reset points the emitter at dst, writes the body header, and clears the
// statistics.
func (em *Emitter) Reset(dst *wire.Encoder, mode Mode, epoch uint64) {
	em.ResetShard(dst)
	em.mode = mode
	if em.shadow != nil {
		AppendDeltaBodyHeader(dst, mode, epoch)
	} else {
		AppendBodyHeader(dst, mode, epoch)
	}
}

// ResetShard points the emitter at dst and clears the statistics without
// writing a body header. The records framed afterwards form a shard body: a
// headerless run of records that a merge step (package parfold) concatenates
// with other shard bodies under one AppendBodyHeader to reconstitute a
// complete checkpoint body.
func (em *Emitter) ResetShard(dst *wire.Encoder) {
	em.dst = dst
	em.stats = Stats{}
	// The clear-set backing array is recycled: keep one the emitter still
	// owns, otherwise draw from the pool that Commit/Abort retire into, so a
	// steady-state epoch never allocates one (see getClears).
	if em.clears != nil {
		em.clears = em.clears[:0]
	} else {
		em.clears = getClears()
	}
	// Stage copies never taken by a driver (an epoch discarded without
	// abandon's bookkeeping) go back to the cache's buffer pool: they were
	// never published, so recycling them is safe.
	if len(em.shadowPends) > 0 {
		if em.shadow != nil {
			em.shadow.Discard(em.shadowPends)
		}
		em.shadowPends = em.shadowPends[:0]
	}
	em.open = false
}

// Begin starts the record for one object and returns the encoder into which
// the object's payload (its Record output) must be written. Each Begin must
// be paired with End before the next Begin.
//
// Begin is also where the epoch's clear-set is captured: if the object's
// modified flag is set now, the caller is about to record the object and
// clear the flag (every engine — Emit/EmitIfModified, reflectckpt, compiled
// plans, generated routines — funnels through Begin before it resets the
// flag), so the object's id and Info are appended to the clear-set for
// commit/abort accounting. See Session.
func (em *Emitter) Begin(info *Info, t TypeID) *wire.Encoder {
	if info.Modified() {
		em.clears = append(em.clears, ClearEntry{ID: info.ID(), Info: info})
	}
	em.open = true
	em.curID = info.ID()
	em.curInfo = info
	if em.scratchMode {
		em.curType = t
		em.scratch.Reset()
		return &em.scratch
	}
	em.dst.Uvarint(info.ID())
	em.dst.Uvarint(uint64(t))
	if em.shadow != nil {
		em.kindPos = em.dst.Len()
		em.dst.Byte(wire.KindFull)
	}
	em.lenPos = em.dst.ReserveUvarint()
	return em.dst
}

// End frames the payload started by Begin into the destination stream: on
// the zero-copy path it patches the reserved length prefix in place; on the
// scratch path it copies the scratch payload behind a computed prefix.
//
// With a shadow cache attached, End is also where the delta decision runs:
// the completed payload is diffed against the object's shadow, the delta
// replaces the payload when it comes in under the size limit (on the
// zero-copy path by truncating back to the reserved prefix and patching the
// kind byte), and the payload is copied into the epoch's pending shadows so
// the next epoch diffs against it once this one commits.
func (em *Emitter) End() {
	if em.shadow != nil {
		em.endShadowed()
		em.stats.Recorded++
		em.open = false
		return
	}
	if em.scratchMode {
		em.dst.Uvarint(em.curID)
		em.dst.Uvarint(uint64(em.curType))
		em.dst.Uvarint(uint64(em.scratch.Len()))
		em.dst.Raw(em.scratch.Bytes())
	} else {
		em.dst.PatchUvarint(em.lenPos)
	}
	em.stats.Recorded++
	em.open = false
}

// endShadowed frames the record begun by Begin with a kind byte, shipping a
// delta payload when the diff against the object's shadow wins. Both encode
// paths make the same decision from the same bytes, so scratch and
// zero-copy delta bodies stay byte-identical.
func (em *Emitter) endShadowed() {
	if em.scratchMode {
		payload := em.scratch.Bytes()
		kind := em.deltaOrFull(payload)
		em.dst.Uvarint(em.curID)
		em.dst.Uvarint(uint64(em.curType))
		em.dst.Byte(kind)
		if kind == wire.KindDelta {
			em.dst.Uvarint(uint64(em.deltaBuf.Len()))
			em.dst.Raw(em.deltaBuf.Bytes())
		} else {
			em.dst.Uvarint(uint64(len(payload)))
			em.dst.Raw(payload)
		}
		return
	}
	payload := em.dst.Bytes()[em.lenPos+1:]
	if em.deltaOrFull(payload) == wire.KindDelta {
		// The payload was staged into the shadow copy above and the delta
		// encoded into deltaBuf; rewind to the reserved length prefix and
		// frame the delta in its place.
		em.dst.Truncate(em.lenPos + 1)
		em.dst.Raw(em.deltaBuf.Bytes())
		em.dst.PatchByte(em.kindPos, wire.KindDelta)
	}
	em.dst.PatchUvarint(em.lenPos)
}

// deltaOrFull consults the shadow cache for the record's diff base, attempts
// the delta, stages the payload copy when the cache asks for one, and
// returns the record kind to frame. The delta bytes, when it returns
// wire.KindDelta, are in em.deltaBuf.
//
// The churn backoff's skip window is consumed here, from the object's own
// Info, before the cache is ever consulted: a fully-churned object in its
// backed-off steady state costs one load and a decrement per emit — no lock,
// no map — which is what keeps the delta writer within noise of a plain
// writer when deltas never win. The report that armed the window staled the
// cache entry, so the full payloads shipped during the window cannot leave a
// poisoned diff base behind.
func (em *Emitter) deltaOrFull(payload []byte) byte {
	if s := em.curInfo.shadowSkip; s > 0 {
		if em.mode != Full {
			em.curInfo.shadowSkip = s - 1
			em.shadowSkips++
			return wire.KindFull
		}
		// A Full emit refreshes the shadow (decide stages below), giving the
		// object a fresh base; the rest of the window would only waste it.
		em.curInfo.shadowSkip = 0
	}
	base, hash, stage, window := em.shadow.decide(em.curID, len(payload), em.mode)
	kind := wire.KindFull
	if base != nil {
		em.deltaBuf.Reset()
		win := wire.AppendDeltaHashed(&em.deltaBuf, base, hash, payload,
			len(payload)*deltaLimitNum/deltaLimitDen)
		if w := em.shadow.report(em.curID, win); w > 0 {
			// The loss armed the churn backoff: the coming emits skip the
			// cache entirely and the entry is already stale, so the staged
			// copy could never serve as a base — save the copy.
			window = w
			stage = false
		}
		if win {
			kind = wire.KindDelta
			em.stats.Deltas++
		}
	}
	if window > 0 {
		em.curInfo.shadowSkip = uint16(window)
	}
	if stage {
		em.shadowPends = append(em.shadowPends, em.shadow.copyPayload(em.curID, payload))
	}
	return kind
}

// Emit records o unconditionally: Begin, o.Record, End, and clears the
// modified flag.
func (em *Emitter) Emit(o Checkpointable) {
	info := o.CheckpointInfo()
	p := em.Begin(info, o.CheckpointTypeID())
	o.Record(p)
	em.End()
	info.ResetModified()
}

// EmitIfModified records o only if its modified flag is set, and reports
// whether it did.
func (em *Emitter) EmitIfModified(o Checkpointable) bool {
	info := o.CheckpointInfo()
	if !info.Modified() {
		em.stats.Skipped++
		return false
	}
	p := em.Begin(info, o.CheckpointTypeID())
	o.Record(p)
	em.End()
	info.ResetModified()
	return true
}

// Visit counts a traversed object. Callers that use Emit/EmitIfModified
// should call Visit once per object for accurate statistics.
func (em *Emitter) Visit() { em.stats.Visited++ }

// Skip counts an object whose modified flag was tested and found clear, for
// callers that perform the test themselves (specialized plans).
func (em *Emitter) Skip() { em.stats.Skipped++ }

// Clears returns the clear-set accumulated since Reset: one entry per
// object whose modified flag was set when its record began. The slice is
// owned by the emitter; TakeClears transfers ownership.
func (em *Emitter) Clears() []ClearEntry { return em.clears }

// TakeClears returns the accumulated clear-set and detaches it from the
// emitter, transferring ownership to the caller (a Writer finishing an
// epoch, or a parallel fold gathering per-worker sets).
func (em *Emitter) TakeClears() []ClearEntry {
	c := em.clears
	em.clears = nil
	return c
}

// Stats returns the counters accumulated since Reset, with Bytes set to the
// destination length so far.
func (em *Emitter) Stats() Stats {
	s := em.stats
	if em.dst != nil {
		s.Bytes = em.dst.Len()
	}
	return s
}

// bodyHeader is the decoded checkpoint body header.
type bodyHeader struct {
	version byte
	mode    Mode
	epoch   uint64
}

// record is one framed object record within a body. The payload aliases the
// body buffer. kind is wire.KindFull for version-1 bodies, whose records
// carry no kind byte.
type record struct {
	id      uint64
	typeID  TypeID
	kind    byte
	payload []byte
}

// parseBodyHeader reads the header and leaves d positioned at the first
// record.
func parseBodyHeader(d *wire.Decoder) (bodyHeader, error) {
	var h bodyHeader
	h.version = d.Byte()
	h.mode = Mode(d.Byte())
	h.epoch = d.Uvarint()
	if err := d.Err(); err != nil {
		return h, err
	}
	if h.version != bodyVersion && h.version != bodyVersion2 {
		return h, ErrBadBody
	}
	if h.mode != Full && h.mode != Incremental {
		return h, ErrBadBody
	}
	return h, nil
}

// nextRecord reads one framed record; hasKind selects the version-2 framing
// with a kind byte between type and length. It returns ok=false at a clean
// end of body.
func nextRecord(d *wire.Decoder, hasKind bool) (rec record, ok bool, err error) {
	if d.Len() == 0 {
		return record{}, false, nil
	}
	rec.id = d.Uvarint()
	rec.typeID = TypeID(d.Uvarint())
	if hasKind {
		rec.kind = d.Byte()
		if rec.kind != wire.KindFull && rec.kind != wire.KindDelta {
			if err := d.Err(); err != nil {
				return record{}, false, err
			}
			return record{}, false, ErrBadBody
		}
	}
	n := d.Uvarint()
	if err := d.Err(); err != nil {
		return record{}, false, err
	}
	if n > uint64(d.Len()) {
		return record{}, false, ErrBadBody
	}
	rec.payload = d.Raw(int(n))
	if err := d.Err(); err != nil {
		return record{}, false, err
	}
	return rec, true, nil
}
