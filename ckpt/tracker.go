package ckpt

import (
	"cmp"
	"errors"
	"slices"
	"sync/atomic"
)

// This file implements the dirty index that makes an incremental checkpoint
// cost O(dirty) instead of O(live graph).
//
// The generic incremental fold traverses every reachable object only to test
// a modified flag that is almost always clear; the paper attacks that waste
// statically, by specializing the traversal to the modification pattern. The
// Tracker attacks it dynamically: Info.Mark enqueues the object into a
// per-tracker mark-queue the moment it is dirtied, so an incremental epoch
// folds exactly the dirty set — resolved to objects through the RootIndex
// machinery — and never visits a clean object at all. The two optimizations
// compose: a specialized plan's per-class record routine is the natural
// EmitOne for a dirty fold.

// ErrDirtyMode reports a dirty fold requested in a mode other than
// Incremental. A dirty fold encodes only the marked objects, which is
// meaningless for a Full body; take a Full checkpoint with a traversal fold
// and re-Watch the tracker instead.
var ErrDirtyMode = errors.New("ckpt: dirty fold requires Incremental mode")

// EmitOne records exactly one object — no traversal — into em: test the
// modified flag, Begin/Record/End, clear the flag. It is the per-object
// projection of an engine's fold, used to encode a tracker's dirty set.
// EmitObject is the virtual-dispatch implementation; reflectckpt.Engine,
// spec.Plan, and generated routines (cmd/ckptgen) provide specialized ones.
type EmitOne func(em *Emitter, o Checkpointable) error

// EmitObject is the virtual-dispatch EmitOne: it records o through its
// Record method if its modified flag is set.
func EmitObject(em *Emitter, o Checkpointable) error {
	em.EmitIfModified(o)
	return nil
}

// Tracker is a dirty index over one checkpointed object graph: a mark-queue
// fed by Info.Mark plus a RootIndex view resolving queued ids to objects.
//
// The contract mirrors the session protocol's shape. Objects are registered
// into the tracker's view by Watch (a traversal over the roots) or Track
// (one object at a time); registration tags each Info with the tracker so
// that Mark — the write barrier Cell.Set and migrated call sites use —
// enqueues the object the moment it is dirtied. A checkpoint then drains the
// queue with Take and folds only those objects.
//
// The index degrades, never lies: whenever an object is dirtied outside the
// tracker's view — allocated after the last Watch (Domain.AttachTracker
// counts those), marked but unresolvable, or replaced so the registered Info
// no longer matches — the tracker flags itself degraded and NextMode forces
// the next checkpoint to Full, whose traversal recaptures everything live.
// Watch after that Full rebuilds the view and clears the degradation,
// exactly as Session.NextMode recovers from an unresolvable abort.
//
// Tracker is not safe for concurrent use: Mark, Take, and Watch must come
// from the mutator thread, like every Info operation. The queue's backing
// array, the taken slice, and the view survive across epochs, so a
// steady-state Take allocates nothing.
type Tracker struct {
	queue    []*Info
	view     *RootIndex
	taken    []Checkpointable
	degraded bool
	// denseInfos/denseObjs cache the view as struct-of-arrays slices indexed
	// by id when the id space is dense enough (Domains issue sequential ids,
	// so it almost always is): Take then resolves each queued id with an
	// array index instead of a map lookup, and large dirty sets are collected
	// by an in-order scan instead of a sort. The scan tests dirty bits
	// through the info array alone — 8 bytes per slot instead of 24, so a
	// mostly-clean sweep touches a third of the cache lines an
	// array-of-structs layout would — and loads the paired object slot only
	// on a hit. The two slices always have equal length; both nil when the
	// ids are too sparse. The view map stays authoritative either way.
	denseInfos []*Info
	denseObjs  []Checkpointable
	// fresh counts objects allocated under an attached Domain since the last
	// Watch: objects the view cannot resolve yet. Any Take while fresh > 0
	// degrades the tracker (the dirty set may be incomplete).
	fresh int
	// liveQueued counts mark-queue entries whose modified flag is still set:
	// enqueue increments it, Info.ResetModified decrements it as it retires
	// an entry. Take's scan path checks its collected dirty set against this
	// count in O(1) instead of sweeping the queue; any mismatch diverts to
	// the precise per-entry path. Atomic because a parallel fold's workers
	// reset flags concurrently.
	liveQueued atomic.Int64
}

// denseBound reports whether an id space reaching maxID is dense enough to
// cache n registered objects as a slice: at worst 4x the object count (plus
// slack for small graphs) of mostly-nil slots.
func denseBound(maxID uint64, n int) bool {
	return n > 0 && maxID < uint64(4*n+1024)
}

// NewTracker returns an empty tracker. Register objects with Watch or Track
// (and attach the tracker to the issuing Domain so allocations are counted)
// before relying on Take.
func NewTracker() *Tracker {
	return &Tracker{view: &RootIndex{objs: make(map[uint64]Checkpointable)}}
}

// enqueue appends i to the mark-queue and counts the live entry. Callers
// (Info.Mark, Watch, Track) have already set the queued bit.
func (t *Tracker) enqueue(i *Info) {
	t.queue = append(t.queue, i)
	t.liveQueued.Add(1)
}

// Watch rebuilds the tracker's view as the RootIndex of the graphs reachable
// from roots, tags every reachable Info with the tracker, re-enqueues every
// reachable modified object, and clears the degraded state and the fresh
// count. Call it after building the graph, and again after every Full
// checkpoint taken to recover from degradation (the Full body captured
// everything live, so the rebuilt view and queue are complete again).
//
// On a traversal error the tracker is left degraded and the error returned.
func (t *Tracker) Watch(roots ...Checkpointable) error {
	// Empty the queue first, clearing queued bits through the captured
	// pointers so stale entries can never block a future Mark from
	// enqueueing.
	for _, i := range t.queue {
		i.queued = false
	}
	t.queue = t.queue[:0]
	t.liveQueued.Store(0)
	idx, err := IndexRoots(roots...)
	if err != nil {
		t.degraded = true
		return err
	}
	t.view = idx
	var maxID uint64
	for id := range idx.objs {
		if id > maxID {
			maxID = id
		}
	}
	if denseBound(maxID, len(idx.objs)) {
		need := int(maxID + 1)
		if cap(t.denseInfos) >= need && cap(t.denseObjs) >= need {
			t.denseInfos = t.denseInfos[:need]
			t.denseObjs = t.denseObjs[:need]
			clear(t.denseInfos)
			clear(t.denseObjs)
		} else {
			t.denseInfos = make([]*Info, need)
			t.denseObjs = make([]Checkpointable, need)
		}
	} else {
		t.denseInfos, t.denseObjs = nil, nil
	}
	for id, o := range idx.objs {
		info := o.CheckpointInfo()
		if t.denseInfos != nil {
			t.denseInfos[id] = info
			t.denseObjs[id] = o
		}
		info.tracker = t
		info.fresh = false
		info.self = info
		if info.modified {
			info.queued = true
			t.enqueue(info)
		} else {
			info.queued = false
		}
	}
	t.fresh = 0
	t.degraded = false
	return nil
}

// Track registers one object in the tracker's view, tags its Info, and
// enqueues it if it is already modified. It is the incremental alternative
// to a full Watch when the caller knows exactly which object joined the
// graph: tracking a freshly allocated object settles its fresh debt, so an
// allocation that is immediately Tracked does not degrade the tracker.
func (t *Tracker) Track(o Checkpointable) {
	info := o.CheckpointInfo()
	if info.fresh && info.tracker == t {
		info.fresh = false
		if t.fresh > 0 {
			t.fresh--
		}
	}
	info.tracker = t
	// Adopt the Info (see Info.self) only when it does not claim queue
	// membership: an unadopted Info with the queued bit set is either a
	// by-value copy (which must stay rejectable by the scan path) or a
	// MarkOn-ed object the next Watch will adopt — ambiguous, so leave it to
	// the precise Take path, which resolves both correctly.
	if !info.queued {
		info.self = info
	}
	t.view.objs[info.id] = o
	if t.denseInfos != nil {
		switch {
		case info.id < uint64(len(t.denseInfos)):
			t.denseInfos[info.id] = info
			t.denseObjs[info.id] = o
		case denseBound(info.id, len(t.view.objs)):
			for uint64(len(t.denseInfos)) <= info.id {
				t.denseInfos = append(t.denseInfos, nil)
				t.denseObjs = append(t.denseObjs, nil)
			}
			t.denseInfos[info.id] = info
			t.denseObjs[info.id] = o
		default:
			t.denseInfos, t.denseObjs = nil, nil
		}
	}
	if info.modified && !info.queued {
		info.queued = true
		t.enqueue(info)
	}
}

// Take drains the mark-queue and returns the dirty set in canonical
// (ascending id) order, ready to fold: every returned object is registered,
// distinct, and has its modified flag set. Entries whose flag was cleared
// since they were marked (a traversal fold ran in between) are dropped.
// Entries the view cannot resolve — or that resolve to an object whose Info
// is no longer the one that was marked — degrade the tracker, as does any
// unsettled allocation (see Domain.AttachTracker): the dirty set may then be
// incomplete, so NextMode forces the next checkpoint to Full.
//
// The returned slice is owned by the tracker and invalidated by the next
// Take.
//
// Canonical order is produced adaptively: small dirty sets are sorted (after
// a one-pass check that skips the sort when marks already arrived in
// ascending order); when a large fraction of a dense-id graph is dirty, the
// set is instead collected by a single in-order scan of the dense view —
// O(live) with a tiny constant, cheaper there than O(dirty log dirty)
// comparison sorting, and irrelevant to the O(dirty) steady state the
// threshold excludes. The scan trusts its result only when every collected
// Info is adopted (Info.self — rejects by-value copies by address) and the
// collected count equals the tracker's live-entry count (liveQueued — proves
// no marked object was missed), both without touching the queue; anything
// else diverts to the precise per-entry path below, which alone decides
// degradation.
func (t *Tracker) Take() []Checkpointable {
	if t.fresh > 0 {
		t.degraded = true
	}
	t.taken = t.taken[:0]
	if t.scanReady() {
		if t.scanQueue() {
			return t.taken
		}
		t.taken = t.taken[:0]
	}
	asc := true
	for k := 1; k < len(t.queue); k++ {
		if t.queue[k].id < t.queue[k-1].id {
			asc = false
			break
		}
	}
	if !asc {
		slices.SortFunc(t.queue, func(a, b *Info) int {
			return cmp.Compare(a.id, b.id)
		})
	}
	for _, info := range t.queue {
		if !info.modified {
			continue
		}
		o := t.resolveObj(info.id)
		if o == nil || o.CheckpointInfo() != info {
			t.degraded = true
			continue
		}
		// The queue can hold the same Info twice — marked, retired by
		// ResetModified, marked again — which sorts adjacent; emit once.
		if n := len(t.taken); n > 0 && t.taken[n-1] == o {
			continue
		}
		t.taken = append(t.taken, o)
	}
	t.finishTake()
	return t.taken
}

// scanQueue collects the dirty set in ascending id order straight off the
// dense view: one pass taking every adopted live Info (clearing its queued
// bit as it goes), then an O(1) verification that the collected count equals
// the tracker's live-entry count. A match proves the scan took exactly the
// queue's live entries — every live entry is counted at enqueue and retired
// by ResetModified, phantoms (copies carrying stale bits) are rejected by the
// adoption check, and a forged survivor would have to desynchronize both the
// count and the adoption address at once — so the queue is dropped without
// ever being swept. On a mismatch it returns false with taken possibly
// half-built and the queue intact for the precise fallback.
func (t *Tracker) scanQueue() bool {
	for i, info := range t.denseInfos {
		if info != nil && info.queued && info.modified && info.tracker == t && info.self == info {
			info.queued = false
			t.taken = append(t.taken, t.denseObjs[i])
		}
	}
	if int64(len(t.taken)) != t.liveQueued.Load() {
		return false
	}
	t.liveQueued.Store(0)
	t.queue = t.queue[:0]
	return true
}

// drainScan is the fused form of Take for the virtual-dispatch dirty fold:
// it walks the dense view once and records every hit into em on the spot —
// while the Info's cache line is still hot from the dirty-bit test — instead
// of materializing the taken slice for a second pass. Each hit is a genuine
// registered object (adoption check) with its modified flag set, so emitting
// it is sound unconditionally: over-capture is merely conservative, and the
// closing count check catches under-capture — on a mismatch drainScan
// returns false with the queue intact, and the caller recovers the missed
// entries through Take, whose precise path skips the already-recorded
// (now clean) objects. It reports true when the scan provably covered every
// live entry. Callers must check that the scan path applies (dense view
// present, queue past the density threshold) before calling.
func (t *Tracker) drainScan(em *Emitter) bool {
	if t.fresh > 0 {
		t.degraded = true
	}
	emitted := int64(0)
	for i, info := range t.denseInfos {
		if info != nil && info.queued && info.modified && info.tracker == t && info.self == info {
			info.queued = false
			em.Visit()
			em.EmitIfModified(t.denseObjs[i])
			emitted++
		}
	}
	if emitted != t.liveQueued.Load() {
		return false
	}
	t.liveQueued.Store(0)
	t.queue = t.queue[:0]
	return true
}

// scanReady reports whether Take would collect the dirty set by the dense
// in-order scan: a dense view is cached and the queue is past the density
// threshold (below it, sorting the small queue is cheaper than visiting
// every slot).
func (t *Tracker) scanReady() bool {
	return t.denseInfos != nil && len(t.queue)*16 >= len(t.view.objs)
}

// finishTake clears the queued bits through the captured pointers and empties
// the queue, after the dirty set has been collected.
func (t *Tracker) finishTake() {
	for _, info := range t.queue {
		info.queued = false
	}
	t.queue = t.queue[:0]
	t.liveQueued.Store(0)
}

// resolveObj resolves a registered id to its object: through the dense cache
// when active (it mirrors the view exactly), through the view map otherwise.
func (t *Tracker) resolveObj(id uint64) Checkpointable {
	if t.denseObjs != nil {
		if id < uint64(len(t.denseObjs)) {
			return t.denseObjs[id]
		}
		return nil
	}
	return t.view.objs[id]
}

// Requeue re-enqueues every object in objs whose modified flag is still set
// — the recovery path when a dirty fold fails after Take drained the queue.
// Objects the failed fold already recorded have clear flags and are skipped
// here; they are covered by the epoch's clear-set instead (Session.Abort
// re-marks them through Mark, which re-enqueues). Both paths are idempotent,
// so Requeue and Abort compose in either order.
func (t *Tracker) Requeue(objs []Checkpointable) {
	for _, o := range objs {
		info := o.CheckpointInfo()
		if info.modified {
			info.Mark()
		}
	}
}

// NextMode returns the mode the next checkpoint must use: want, upgraded to
// Full while the tracker is degraded. Unlike Session.NextMode the
// degradation does not clear on commit — only Watch, which rebuilds the
// view, clears it.
func (t *Tracker) NextMode(want Mode) Mode {
	if t.degraded && want != Full {
		return Full
	}
	return want
}

// Degraded reports whether the dirty set may be incomplete, so that only a
// Full traversal checkpoint (followed by Watch) restores the O(dirty)
// invariant.
func (t *Tracker) Degraded() bool { return t.degraded }

// Dirty returns the number of mark-queue entries awaiting the next Take.
// Stale entries (flag since cleared) are counted until Take drops them.
func (t *Tracker) Dirty() int { return len(t.queue) }

// Len returns the number of objects registered in the tracker's view.
func (t *Tracker) Len() int { return t.view.Len() }

// Resolve returns the Info of the registered object with the given id, or
// nil. Its signature matches InfoResolver, so a tracker doubles as a
// session's resolver: ckpt.NewSession(ckpt.WithInfoResolver(t.Resolve)).
func (t *Tracker) Resolve(id uint64) *Info { return t.view.Resolve(id) }
