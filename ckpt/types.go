package ckpt

import (
	"errors"
	"hash/fnv"

	"ickpt/wire"
)

// TypeID identifies a checkpointable type in the stream. It must be stable
// across program runs; TypeIDOf derives it from the type's registered name.
type TypeID uint32

// TypeIDOf returns the stable TypeID for a registered type name (FNV-1a of
// the name). Registry.Register rejects colliding names.
func TypeIDOf(name string) TypeID {
	h := fnv.New32a()
	h.Write([]byte(name))
	return TypeID(h.Sum32())
}

// Mode selects full or incremental checkpointing.
type Mode uint8

// Checkpoint modes.
const (
	// Full records every visited object regardless of its modified flag.
	Full Mode = iota + 1
	// Incremental records only objects whose modified flag is set,
	// clearing the flag as they are recorded.
	Incremental
)

// String returns "full" or "incremental".
func (m Mode) String() string {
	switch m {
	case Full:
		return "full"
	case Incremental:
		return "incremental"
	default:
		return "invalid"
	}
}

// Checkpointable is implemented by every object that participates in
// checkpointing. It is the Go rendering of the paper's Checkpointable
// interface.
//
// Record must write the object's local state: scalar fields, plus — for each
// checkpointable child — the child's id (NilID for nil). Fold must invoke
// w.Checkpoint on each non-nil child, in the same order that Record wrote
// their ids. Record and Fold must be deterministic functions of the object's
// state.
type Checkpointable interface {
	// CheckpointInfo returns the object's checkpoint metadata.
	CheckpointInfo() *Info
	// CheckpointTypeID returns the object's stable type identifier.
	CheckpointTypeID() TypeID
	// Record writes the object's local state to e.
	Record(e *wire.Encoder)
	// Fold applies w.Checkpoint to each checkpointable child.
	Fold(w *Writer) error
}

// Restorable extends Checkpointable with the inverse of Record: Restore
// reads the fields written by Record, resolving child ids through res.
type Restorable interface {
	Checkpointable
	// Restore reads the object's local state from d, in the order Record
	// wrote it, resolving each child id via res.
	Restore(d *wire.Decoder, res *Resolver) error
}

// Errors returned by the writer and rebuilder.
var (
	// ErrCycle reports a cycle discovered during traversal (with
	// WithCycleCheck). The checkpointed structure must be acyclic.
	ErrCycle = errors.New("ckpt: cycle in checkpointable structure")
	// ErrNotStarted reports Checkpoint or Finish on a writer with no
	// checkpoint in progress.
	ErrNotStarted = errors.New("ckpt: writer not started")
	// ErrBadBody reports a checkpoint body that cannot be parsed.
	ErrBadBody = errors.New("ckpt: malformed checkpoint body")
	// ErrUnknownType reports a TypeID with no registered factory.
	ErrUnknownType = errors.New("ckpt: unknown type id")
	// ErrUnknownObject reports a child id that no record defines.
	ErrUnknownObject = errors.New("ckpt: unresolved object id")
	// ErrTypeConflict reports two registrations whose names collide, or a
	// resolved object with an unexpected type.
	ErrTypeConflict = errors.New("ckpt: type conflict")
	// ErrDeltaBase reports a delta record that cannot be materialized: no
	// earlier payload for its object exists in the stream, or the payload
	// that does is not the base the delta was encoded against.
	ErrDeltaBase = errors.New("ckpt: delta base missing or mismatched")
)
