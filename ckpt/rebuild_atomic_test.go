package ckpt_test

import (
	"errors"
	"testing"

	"ickpt/ckpt"
)

// TestApplyCorruptBodyIsAtomic: a body that fails mid-parse must leave the
// rebuilder untouched, so recovery can skip it and continue. The old
// record-by-record Apply half-applied the good records (and, for a full
// body, had already thrown away the previous generation).
func TestApplyCorruptBodyIsAtomic(t *testing.T) {
	d := ckpt.NewDomain()
	w := ckpt.NewWriter()
	b := buildChain(d, 3)
	full, _ := checkpointBody(t, w, ckpt.Full, b)

	rb := ckpt.NewRebuilder(testRegistry(t))
	if err := rb.Apply(full); err != nil {
		t.Fatal(err)
	}
	want := rb.Objects()
	if want == 0 {
		t.Fatal("no objects in base checkpoint")
	}

	// An incremental body torn mid-record.
	b.head.x = 99
	b.head.CheckpointInfo().SetModified()
	incr, _ := checkpointBody(t, w, ckpt.Incremental, b)
	if err := rb.Apply(incr[:len(incr)-1]); !errors.Is(err, ckpt.ErrBadBody) {
		t.Fatalf("torn incremental Apply = %v, want ErrBadBody", err)
	}
	if got := rb.Objects(); got != want {
		t.Errorf("objects after failed incremental = %d, want %d (state mutated)", got, want)
	}

	// A torn FULL body must not wipe the previous generation either.
	b.head.x = 100
	b.head.CheckpointInfo().SetModified()
	full2, _ := checkpointBody(t, w, ckpt.Full, b)
	if err := rb.Apply(full2[:len(full2)-1]); !errors.Is(err, ckpt.ErrBadBody) {
		t.Fatalf("torn full Apply = %v, want ErrBadBody", err)
	}
	if got := rb.Objects(); got != want {
		t.Errorf("objects after failed full = %d, want %d (generation wiped)", got, want)
	}

	// The rebuilder still works: the intact incremental applies, and Build
	// reflects it.
	if err := rb.Apply(incr); err != nil {
		t.Fatalf("intact incremental after failures: %v", err)
	}
	objs, err := rb.Build(d)
	if err != nil {
		t.Fatalf("Build: %v", err)
	}
	head, ok := objs[b.head.CheckpointInfo().ID()].(*point)
	if !ok {
		t.Fatal("head not rebuilt as *point")
	}
	if head.x != 99 {
		t.Errorf("head.x = %d, want 99 (incremental applied)", head.x)
	}
}
