package ckpt_test

import (
	"errors"
	"testing"

	"ickpt/ckpt"
)

// TestApplyCorruptBodyIsAtomic: a body that fails mid-parse must leave the
// rebuilder untouched, so recovery can skip it and continue. The old
// record-by-record Apply half-applied the good records (and, for a full
// body, had already thrown away the previous generation).
func TestApplyCorruptBodyIsAtomic(t *testing.T) {
	d := ckpt.NewDomain()
	w := ckpt.NewWriter()
	b := buildChain(d, 3)
	full, _ := checkpointBody(t, w, ckpt.Full, b)

	rb := ckpt.NewRebuilder(testRegistry(t))
	if err := rb.Apply(full); err != nil {
		t.Fatal(err)
	}
	want := rb.Objects()
	if want == 0 {
		t.Fatal("no objects in base checkpoint")
	}

	// An incremental body torn mid-record.
	b.head.x = 99
	b.head.CheckpointInfo().SetModified()
	incr, _ := checkpointBody(t, w, ckpt.Incremental, b)
	if err := rb.Apply(incr[:len(incr)-1]); !errors.Is(err, ckpt.ErrBadBody) {
		t.Fatalf("torn incremental Apply = %v, want ErrBadBody", err)
	}
	if got := rb.Objects(); got != want {
		t.Errorf("objects after failed incremental = %d, want %d (state mutated)", got, want)
	}

	// A torn FULL body must not wipe the previous generation either.
	b.head.x = 100
	b.head.CheckpointInfo().SetModified()
	full2, _ := checkpointBody(t, w, ckpt.Full, b)
	if err := rb.Apply(full2[:len(full2)-1]); !errors.Is(err, ckpt.ErrBadBody) {
		t.Fatalf("torn full Apply = %v, want ErrBadBody", err)
	}
	if got := rb.Objects(); got != want {
		t.Errorf("objects after failed full = %d, want %d (generation wiped)", got, want)
	}

	// The rebuilder still works: the intact incremental applies, and Build
	// reflects it.
	if err := rb.Apply(incr); err != nil {
		t.Fatalf("intact incremental after failures: %v", err)
	}
	objs, err := rb.Build(d)
	if err != nil {
		t.Fatalf("Build: %v", err)
	}
	head, ok := objs[b.head.CheckpointInfo().ID()].(*point)
	if !ok {
		t.Fatal("head not rebuilt as *point")
	}
	if head.x != 99 {
		t.Errorf("head.x = %d, want 99 (incremental applied)", head.x)
	}
}

// TestApplyRunAtomic: ApplyRun is all-or-nothing over a whole chain — the
// replay primitive behind stablelog's rewind. A failure at any position
// (including after earlier bodies already staged) must leave the rebuilder
// exactly as it was, and a successful full-anchored run must replace the
// prior state wholesale.
func TestApplyRunAtomic(t *testing.T) {
	d := ckpt.NewDomain()
	w := ckpt.NewWriter()
	b := buildChain(d, 3)
	full, _ := checkpointBody(t, w, ckpt.Full, b)

	mutate := func(x int64) []byte {
		b.head.x = x
		b.head.CheckpointInfo().SetModified()
		body, _ := checkpointBody(t, w, ckpt.Incremental, b)
		return body
	}
	incr1, incr2 := mutate(41), mutate(42)

	// Seed a rebuilder with an older generation.
	rb := ckpt.NewRebuilder(testRegistry(t))
	if err := rb.Apply(full); err != nil {
		t.Fatal(err)
	}
	if err := rb.Apply(incr1); err != nil {
		t.Fatal(err)
	}
	want := rb.Objects()

	// A run whose last body is torn must change nothing, even though the
	// full and the first incremental staged fine.
	err := rb.ApplyRun([][]byte{full, incr1, incr2[:len(incr2)-1]})
	if !errors.Is(err, ckpt.ErrBadBody) {
		t.Fatalf("torn run ApplyRun = %v, want ErrBadBody", err)
	}
	if got := rb.Objects(); got != want {
		t.Errorf("objects after failed run = %d, want %d", got, want)
	}
	objs, err := rb.Build(nil)
	if err != nil {
		t.Fatal(err)
	}
	if head := objs[b.head.CheckpointInfo().ID()].(*point); head.x != 41 {
		t.Errorf("head.x = %d after failed run, want 41 (state leaked)", head.x)
	}

	// The intact run replaces the state wholesale.
	if err := rb.ApplyRun([][]byte{full, incr1, incr2}); err != nil {
		t.Fatalf("intact ApplyRun: %v", err)
	}
	objs, err = rb.Build(nil)
	if err != nil {
		t.Fatal(err)
	}
	if head := objs[b.head.CheckpointInfo().ID()].(*point); head.x != 42 {
		t.Errorf("head.x = %d, want 42", head.x)
	}

	// An incremental-first run on a fresh rebuilder is rejected up front.
	fresh := ckpt.NewRebuilder(testRegistry(t))
	if err := fresh.ApplyRun([][]byte{incr1}); !errors.Is(err, ckpt.ErrBadBody) {
		t.Fatalf("incremental-first run = %v, want ErrBadBody", err)
	}
	if fresh.Objects() != 0 {
		t.Error("failed run populated a fresh rebuilder")
	}

	// An incremental run extending existing state applies without
	// disturbing it on failure.
	ext := ckpt.NewRebuilder(testRegistry(t))
	if err := ext.Apply(full); err != nil {
		t.Fatal(err)
	}
	if err := ext.ApplyRun([][]byte{incr1, incr2[:len(incr2)-1]}); !errors.Is(err, ckpt.ErrBadBody) {
		t.Fatalf("torn extension run = %v, want ErrBadBody", err)
	}
	objs, err = ext.Build(nil)
	if err != nil {
		t.Fatal(err)
	}
	if head := objs[b.head.CheckpointInfo().ID()].(*point); head.x != 0 {
		t.Errorf("head.x = %d after failed extension, want 0", head.x)
	}
	if err := ext.ApplyRun([][]byte{incr1, incr2}); err != nil {
		t.Fatal(err)
	}

	// An empty run is a no-op.
	if err := ext.ApplyRun(nil); err != nil {
		t.Fatalf("empty ApplyRun = %v", err)
	}
}
