package ckpt

// Slab is a block arena for Info-bearing objects: New hands out pointers
// into fixed-size blocks, so a high-churn workload (an interpreter
// allocating environments, pairs, and boxes every step) pays one heap
// allocation per block of objects instead of one per object, and the
// objects of a block stay contiguous — the same locality the dirty index's
// dense scan exploits, since Domains issue ids in allocation order.
//
// Slab never frees individual objects: its memory lives until the whole
// slab is released (dropped), matching checkpointed heaps whose objects
// stay reachable from the domain's roots for their lifetime. Addresses
// returned by New are stable — blocks are never moved or grown — which is
// what makes a slab safe for objects whose embedded Info is registered in a
// Tracker by address (Info.self).
//
// Slab is not safe for concurrent use. The zero value is ready to use.
type Slab[T any] struct {
	blocks [][]T
	used   int // occupied slots in the last block
}

// slabBlock is the number of objects per block: large enough to amortize
// the per-block allocation, small enough that a sparse workload does not
// strand much memory.
const slabBlock = 256

// New returns a pointer to a zeroed T with a stable address.
func (s *Slab[T]) New() *T {
	if len(s.blocks) == 0 || s.used == slabBlock {
		s.blocks = append(s.blocks, make([]T, slabBlock))
		s.used = 0
	}
	p := &s.blocks[len(s.blocks)-1][s.used]
	s.used++
	return p
}

// Len returns the number of objects allocated from the slab.
func (s *Slab[T]) Len() int {
	if len(s.blocks) == 0 {
		return 0
	}
	return (len(s.blocks)-1)*slabBlock + s.used
}

// Blocks returns the number of blocks backing the slab.
func (s *Slab[T]) Blocks() int { return len(s.blocks) }
