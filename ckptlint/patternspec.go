package ckptlint

import (
	"fmt"
	"go/ast"
	"go/constant"
	"go/token"
	"go/types"
	"strings"
)

// PatternSpecAnalyzer cross-checks a phase function's static write-set
// against the modification Pattern the phase declares. A spec.Pattern is
// the paper's unsound-if-wrong assumption: the plan compiler elides
// modified-flag tests for classes the pattern declares unmodified and
// prunes subtrees reached through edges it declares unmodified, so a phase
// that writes such state produces silently stale checkpoints. At run time
// only spec.WithVerify catches this; the analyzer catches it at build time.
//
// Phases opt in with an annotation naming the pattern provider (a function
// or package-level var whose body holds the spec.Pattern literal):
//
//	//ckptvet:phase PatternBTA
//	func (e *Engine) RunBTA(...) ... { ... }
//
// The write-set is computed conservatively from source: direct writes to
// tracked fields, Cell.Set calls, and Info.SetModified calls, closed
// transitively over calls to same-package functions and methods. Writes the
// analyzer cannot see (reflection, cross-package mutation, function
// values) are out of scope; patterns whose construction is not a plain
// composite literal (computed keys, post-construction map writes) are
// treated as opaque and skipped rather than guessed at.
func PatternSpecAnalyzer() *Analyzer {
	return &Analyzer{
		Name: "patternspec",
		Doc:  "checks annotated phase write-sets against their declared spec.Pattern",
		Run:  runPatternSpec,
	}
}

// Pattern declaration constants, mirrored from package spec by value so the
// analyzer needs no import of it.
const (
	classUnmodified int64 = 1 // spec.ClassUnmodified
	childUnmodified int64 = 1 // spec.ChildUnmodified
)

// lintClass is the statically extracted view of one spec.Class literal.
type lintClass struct {
	name            string
	goTypeName      string            // GoType with the leading '*' stripped
	children        map[string]string // child name -> class name
	childrenUnknown bool              // children built dynamically
}

// lintPattern is the statically extracted view of one spec.Pattern literal.
type lintPattern struct {
	name     string
	classes  map[string]int64 // class name -> ClassMod value
	children map[string]int64 // "Class.Child" -> ChildMod value
	opaque   bool             // construction not fully statically visible
}

func runPatternSpec(pass *Pass) []Diagnostic {
	pkg := pass.Pkg
	gen := generatedFiles(pkg)

	var phases []*ast.FuncDecl
	var providers []string // parallel to phases: annotation argument
	for _, f := range pkg.Files {
		if gen[f] {
			continue
		}
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil || fd.Doc == nil {
				continue
			}
			for _, c := range fd.Doc.List {
				if !strings.HasPrefix(c.Text, "//ckptvet:phase") {
					continue
				}
				arg := strings.TrimSpace(strings.TrimPrefix(c.Text, "//ckptvet:phase"))
				if arg == "" {
					continue
				}
				phases = append(phases, fd)
				providers = append(providers, strings.Fields(arg)[0])
			}
		}
	}
	if len(phases) == 0 {
		return nil
	}

	writes := newWriteSets(pkg)
	var out []Diagnostic
	for i, fd := range phases {
		provPkg, pattern := resolvePattern(pass, providers[i])
		if pattern == nil {
			out = append(out, Diagnostic{
				Pos: pkg.Fset.Position(fd.Name.Pos()),
				Message: fmt.Sprintf("//ckptvet:phase names unknown pattern provider %q (no function or var with a spec.Pattern literal found)",
					providers[i]),
			})
			continue
		}
		if pattern.opaque {
			continue // dynamically built pattern: out of static reach
		}
		classes := collectClasses(provPkg)
		out = append(out, checkPhase(pkg, fd, pattern, classes, writes)...)
	}
	return out
}

// checkPhase reports writes of fd that contradict the pattern.
func checkPhase(pkg *Package, fd *ast.FuncDecl, pattern *lintPattern, classes map[string]*lintClass, ws *writeSets) []Diagnostic {
	byGoType := make(map[string]*lintClass)
	for _, c := range classes {
		if c.goTypeName != "" {
			byGoType[c.goTypeName] = c
		}
	}
	reachable := reachableClasses(classes, pattern)

	var out []Diagnostic
	for _, w := range ws.of(funcObject(pkg, fd)) {
		class, ok := byGoType[w.typeName]
		if !ok {
			continue // type has no specialization class: generic driver territory
		}
		if pattern.classes[class.name] == classUnmodified {
			out = append(out, Diagnostic{
				Pos: pkg.Fset.Position(w.pos),
				Message: fmt.Sprintf("phase %s writes class %s (%s), but pattern %q declares the class unmodified; the specialized plan will skip the change",
					fd.Name.Name, class.name, w.desc, pattern.name),
			})
			continue
		}
		if !reachable[class.name] {
			out = append(out, Diagnostic{
				Pos: pkg.Fset.Position(w.pos),
				Message: fmt.Sprintf("phase %s writes class %s (%s), but pattern %q prunes every traversal path to it; the specialized plan will never record the change",
					fd.Name.Name, class.name, w.desc, pattern.name),
			})
		}
	}
	return out
}

// reachableClasses computes which classes a specialized traversal can still
// record under the pattern: classes with no incoming child edge (potential
// roots) plus classes reached through at least one edge the pattern does
// not declare ChildUnmodified. Classes with dynamically built children are
// treated as reaching all their (unknown) targets, so nothing is reported
// for them.
func reachableClasses(classes map[string]*lintClass, pattern *lintPattern) map[string]bool {
	incoming := make(map[string]int)
	for _, c := range classes {
		for _, target := range c.children {
			incoming[target]++
		}
	}
	reachable := make(map[string]bool)
	for name, c := range classes {
		if incoming[name] == 0 || c.childrenUnknown {
			reachable[name] = true
		}
	}
	anyUnknown := false
	for _, c := range classes {
		if c.childrenUnknown {
			anyUnknown = true
		}
	}
	for changed := true; changed; {
		changed = false
		for _, c := range classes {
			if !reachable[c.name] {
				continue
			}
			for childName, target := range c.children {
				if pattern.children[c.name+"."+childName] == childUnmodified {
					continue
				}
				if !reachable[target] {
					reachable[target] = true
					changed = true
				}
			}
		}
	}
	if anyUnknown {
		// Some edges are invisible; refuse to claim anything is pruned.
		for name := range classes {
			reachable[name] = true
		}
	}
	return reachable
}

// ---- pattern and class extraction ----

// resolvePattern finds the named provider in the pass's packages: first the
// current package, then — for "pkgname.Provider" forms — any loaded package
// with that name.
func resolvePattern(pass *Pass, provider string) (*Package, *lintPattern) {
	target := pass.Pkg
	name := provider
	if dot := strings.IndexByte(provider, '.'); dot > 0 {
		qual, rest := provider[:dot], provider[dot+1:]
		for _, p := range pass.All {
			if p.Types.Name() == qual {
				target, name = p, rest
				break
			}
		}
	}
	if pat := extractPattern(target, name); pat != nil {
		return target, pat
	}
	return nil, nil
}

// extractPattern pulls the spec.Pattern literal out of the named function
// or package var.
func extractPattern(pkg *Package, name string) *lintPattern {
	for _, f := range pkg.Files {
		for _, decl := range f.Decls {
			switch d := decl.(type) {
			case *ast.FuncDecl:
				if d.Recv == nil && d.Name.Name == name && d.Body != nil {
					return patternFromNode(pkg, d.Body)
				}
			case *ast.GenDecl:
				if d.Tok != token.VAR {
					continue
				}
				for _, spec := range d.Specs {
					vs, ok := spec.(*ast.ValueSpec)
					if !ok {
						continue
					}
					for i, id := range vs.Names {
						if id.Name == name && i < len(vs.Values) {
							return patternFromNode(pkg, vs.Values[i])
						}
					}
				}
			}
		}
	}
	return nil
}

// patternFromNode finds the first spec.Pattern composite literal under n
// and extracts it. Any non-constant key, unknown value, or later map write
// marks the pattern opaque.
func patternFromNode(pkg *Package, n ast.Node) *lintPattern {
	var lit *ast.CompositeLit
	ast.Inspect(n, func(node ast.Node) bool {
		if lit != nil {
			return false
		}
		cl, ok := node.(*ast.CompositeLit)
		if !ok {
			return true
		}
		if tv, ok := pkg.Info.Types[cl]; ok && isSpecNamed(tv.Type, "Pattern") {
			lit = cl
			return false
		}
		return true
	})
	if lit == nil {
		return nil
	}
	pat := &lintPattern{classes: make(map[string]int64), children: make(map[string]int64)}
	for _, elt := range lit.Elts {
		kv, ok := elt.(*ast.KeyValueExpr)
		if !ok {
			pat.opaque = true
			continue
		}
		key, ok := kv.Key.(*ast.Ident)
		if !ok {
			pat.opaque = true
			continue
		}
		switch key.Name {
		case "Name":
			if s, ok := constString(pkg, kv.Value); ok {
				pat.name = s
			}
		case "Classes":
			if !extractModMap(pkg, kv.Value, pat.classes) {
				pat.opaque = true
			}
		case "Children":
			if !extractModMap(pkg, kv.Value, pat.children) {
				pat.opaque = true
			}
		}
	}
	// Post-construction writes into the pattern's maps make it dynamic.
	ast.Inspect(n, func(node ast.Node) bool {
		as, ok := node.(*ast.AssignStmt)
		if !ok {
			return true
		}
		for _, lhs := range as.Lhs {
			ie, ok := lhs.(*ast.IndexExpr)
			if !ok {
				continue
			}
			if sel, ok := ie.X.(*ast.SelectorExpr); ok &&
				(sel.Sel.Name == "Classes" || sel.Sel.Name == "Children") {
				pat.opaque = true
			}
		}
		return true
	})
	return pat
}

// extractModMap reads a map[string]spec.ClassMod / spec.ChildMod composite
// literal with constant keys and values into out. Returns false when any
// entry is not statically known.
func extractModMap(pkg *Package, e ast.Expr, out map[string]int64) bool {
	cl, ok := e.(*ast.CompositeLit)
	if !ok {
		// make(map[...]...) starts empty; later writes are caught by the
		// post-construction scan.
		if call, ok := e.(*ast.CallExpr); ok {
			if id, ok := call.Fun.(*ast.Ident); ok && id.Name == "make" {
				return true
			}
		}
		return false
	}
	complete := true
	for _, elt := range cl.Elts {
		kv, ok := elt.(*ast.KeyValueExpr)
		if !ok {
			complete = false
			continue
		}
		key, kok := constString(pkg, kv.Key)
		val, vok := constInt(pkg, kv.Value)
		if !kok || !vok {
			complete = false
			continue
		}
		out[key] = val
	}
	return complete
}

// constInt returns the compile-time integer value of e, if it has one.
func constInt(pkg *Package, e ast.Expr) (int64, bool) {
	tv, ok := pkg.Info.Types[e]
	if !ok || tv.Value == nil || tv.Value.Kind() != constant.Int {
		return 0, false
	}
	return constant.Int64Val(tv.Value)
}

// isSpecNamed reports whether t is (a pointer to) ickpt/spec.name.
func isSpecNamed(t types.Type, name string) bool {
	if ptr, ok := t.(*types.Pointer); ok {
		t = ptr.Elem()
	}
	named, ok := t.(*types.Named)
	if !ok {
		return false
	}
	obj := named.Obj()
	return obj != nil && obj.Pkg() != nil && obj.Pkg().Path() == "ickpt/spec" && obj.Name() == name
}

// collectClasses extracts every spec.Class composite literal of the
// package.
func collectClasses(pkg *Package) map[string]*lintClass {
	classes := make(map[string]*lintClass)
	for _, f := range pkg.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			cl, ok := n.(*ast.CompositeLit)
			if !ok {
				return true
			}
			if tv, ok := pkg.Info.Types[cl]; !ok || !isSpecNamed(tv.Type, "Class") {
				return true
			}
			c := &lintClass{children: make(map[string]string)}
			for _, elt := range cl.Elts {
				kv, ok := elt.(*ast.KeyValueExpr)
				if !ok {
					continue
				}
				key, ok := kv.Key.(*ast.Ident)
				if !ok {
					continue
				}
				switch key.Name {
				case "Name":
					if s, ok := constString(pkg, kv.Value); ok {
						c.name = s
					}
				case "GoType":
					if s, ok := constString(pkg, kv.Value); ok {
						c.goTypeName = strings.TrimPrefix(s, "*")
					}
				case "Children":
					if !extractChildren(pkg, kv.Value, c) {
						c.childrenUnknown = true
					}
				}
			}
			if c.name != "" {
				classes[c.name] = c
			}
			return true
		})
	}
	return classes
}

// extractChildren reads a []spec.Child literal into c. Returns false when
// the slice is built dynamically.
func extractChildren(pkg *Package, e ast.Expr, c *lintClass) bool {
	cl, ok := e.(*ast.CompositeLit)
	if !ok {
		return false
	}
	complete := true
	for _, elt := range cl.Elts {
		childLit, ok := elt.(*ast.CompositeLit)
		if !ok {
			complete = false
			continue
		}
		var childName, childClass string
		for _, ce := range childLit.Elts {
			kv, ok := ce.(*ast.KeyValueExpr)
			if !ok {
				continue
			}
			key, ok := kv.Key.(*ast.Ident)
			if !ok {
				continue
			}
			switch key.Name {
			case "Name":
				if s, ok := constString(pkg, kv.Value); ok {
					childName = s
				}
			case "Class":
				if s, ok := constString(pkg, kv.Value); ok {
					childClass = s
				}
			}
		}
		if childName == "" || childClass == "" {
			complete = false
			continue
		}
		c.children[childName] = childClass
	}
	return complete
}

// ---- write-set computation ----

// typeWrite is one write of tracked state attributed to a named type.
type typeWrite struct {
	typeName string
	pos      token.Pos
	desc     string
}

// writeSets computes and memoizes per-function write-sets with a
// same-package transitive closure over the call graph.
type writeSets struct {
	pkg     *Package
	decls   map[types.Object]*ast.FuncDecl
	memo    map[types.Object][]typeWrite
	visited map[types.Object]bool
}

func newWriteSets(pkg *Package) *writeSets {
	ws := &writeSets{
		pkg:     pkg,
		decls:   make(map[types.Object]*ast.FuncDecl),
		memo:    make(map[types.Object][]typeWrite),
		visited: make(map[types.Object]bool),
	}
	for _, f := range pkg.Files {
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			if obj := funcObject(pkg, fd); obj != nil {
				ws.decls[obj] = fd
			}
		}
	}
	return ws
}

// funcObject returns the types.Object of a function declaration.
func funcObject(pkg *Package, fd *ast.FuncDecl) types.Object {
	return pkg.Info.Defs[fd.Name]
}

// of returns the transitive write-set of fn, deduplicated by type.
func (ws *writeSets) of(fn types.Object) []typeWrite {
	if fn == nil {
		return nil
	}
	if got, ok := ws.memo[fn]; ok {
		return got
	}
	if ws.visited[fn] {
		return nil // recursion: the cycle's writes surface at the entry
	}
	ws.visited[fn] = true
	defer func() { ws.visited[fn] = false }()

	fd := ws.decls[fn]
	if fd == nil {
		return nil
	}
	seen := make(map[string]bool)
	var out []typeWrite
	add := func(w typeWrite) {
		if w.typeName == "" || seen[w.typeName] {
			return
		}
		seen[w.typeName] = true
		out = append(out, w)
	}
	for _, w := range directWrites(ws.pkg, fd) {
		add(w)
	}
	// Close over same-package callees.
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		var id *ast.Ident
		switch fun := call.Fun.(type) {
		case *ast.Ident:
			id = fun
		case *ast.SelectorExpr:
			id = fun.Sel
		case *ast.IndexExpr:
			if sid, ok := fun.X.(*ast.Ident); ok {
				id = sid
			}
		}
		if id == nil {
			return true
		}
		callee, ok := ws.pkg.Info.Uses[id].(*types.Func)
		if !ok || callee.Pkg() == nil || callee.Pkg() != ws.pkg.Types {
			return true
		}
		for _, w := range ws.of(callee) {
			add(typeWrite{typeName: w.typeName, pos: w.pos, desc: w.desc})
		}
		return true
	})
	ws.memo[fn] = out
	return out
}

// directWrites finds fd's own writes of tracked state: tracked-field
// assignments, Cell.Set calls, and Info.SetModified calls, attributed to
// the owning named type.
func directWrites(pkg *Package, fd *ast.FuncDecl) []typeWrite {
	var out []typeWrite
	attr := func(owner ast.Expr, pos token.Pos, desc string) {
		tv, ok := pkg.Info.Types[owner]
		if !ok {
			return
		}
		named := namedOf(tv.Type)
		if named == nil || named.Obj() == nil {
			return
		}
		out = append(out, typeWrite{typeName: named.Obj().Name(), pos: pos, desc: desc})
	}
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		switch st := n.(type) {
		case *ast.AssignStmt:
			for _, lhs := range st.Lhs {
				if w, ok := classifyWrite(pkg, lhs); ok && w.owner != nil {
					attr(w.owner, w.pos, "direct write to "+w.field)
				}
			}
		case *ast.IncDecStmt:
			if w, ok := classifyWrite(pkg, st.X); ok && w.owner != nil {
				attr(w.owner, w.pos, "direct write to "+w.field)
			}
		case *ast.CallExpr:
			sel, ok := st.Fun.(*ast.SelectorExpr)
			if !ok {
				return true
			}
			// cell.Set(&owner.Info, v)
			if sel.Sel.Name == "Set" {
				if tv, ok := pkg.Info.Types[sel.X]; ok && isCkptNamed(tv.Type, "Cell") {
					if inner, ok := sel.X.(*ast.SelectorExpr); ok {
						attr(inner.X, st.Pos(), "Cell.Set of "+inner.Sel.Name)
					}
				}
			}
			// owner.Info.{Mark,MarkOn,SetModified}() — directly or through
			// owner.CheckpointInfo().
			if sel.Sel.Name == "SetModified" || sel.Sel.Name == "Mark" || sel.Sel.Name == "MarkOn" {
				if tv, ok := pkg.Info.Types[sel.X]; ok && isCkptNamed(tv.Type, "Info") {
					switch x := sel.X.(type) {
					case *ast.SelectorExpr:
						attr(x.X, st.Pos(), "Info."+sel.Sel.Name)
					case *ast.CallExpr:
						if inner, ok := x.Fun.(*ast.SelectorExpr); ok && inner.Sel.Name == "CheckpointInfo" {
							attr(inner.X, st.Pos(), "Info."+sel.Sel.Name)
						}
					}
				}
			}
		}
		return true
	})
	return out
}
