package ckptlint

import (
	"fmt"
	"go/ast"

	"ickpt/internal/bta"
)

// PatternSpecAnalyzer cross-checks a phase function's static write-set
// against the modification Pattern the phase declares. A spec.Pattern is
// the paper's unsound-if-wrong assumption: the plan compiler elides
// modified-flag tests for classes the pattern declares unmodified and
// prunes subtrees reached through edges it declares unmodified, so a phase
// that writes such state produces silently stale checkpoints. At run time
// only spec.WithVerify catches this; the analyzer catches it at build time.
//
// Phases opt in with an annotation naming the pattern provider (a function
// or package-level var whose body holds the spec.Pattern literal):
//
//	//ckptvet:phase PatternBTA
//	func (e *Engine) RunBTA(...) ... { ... }
//
// The write-set and pattern extraction live in internal/bta, shared with
// the pattern inferrer (cmd/ckptinfer): the checker and the generator see
// source identically. The write-set is computed conservatively from source:
// direct writes to tracked fields, Cell.Set calls, and Info.SetModified
// calls, closed transitively over calls to same-package functions and
// methods. Writes the analyzer cannot see (reflection, cross-package
// mutation, function values) are out of scope. Patterns whose construction
// is not a plain composite literal (computed keys, post-construction map
// writes) cannot be checked; such phases are flagged as unchecked rather
// than silently passed, unless the doc comment acknowledges the dynamic
// construction:
//
//	//ckptvet:phase PatternScan
//	//ckptvet:opaque pattern assembled from per-deployment config
func PatternSpecAnalyzer() *Analyzer {
	return &Analyzer{
		Name: "patternspec",
		Doc:  "checks annotated phase write-sets against their declared spec.Pattern",
		Run:  runPatternSpec,
	}
}

func runPatternSpec(pass *Pass) []Diagnostic {
	pkg := pass.Pkg
	apkg := pkg.analysisPkg()
	phases := bta.Phases(apkg)
	if len(phases) == 0 {
		return nil
	}
	all := make([]*bta.Package, len(pass.All))
	for i, p := range pass.All {
		all[i] = p.analysisPkg()
	}

	writes := bta.NewWriteSets(apkg)
	var out []Diagnostic
	for _, ph := range phases {
		provPkg, pattern := bta.ResolvePattern(apkg, all, ph.Provider)
		if pattern == nil {
			out = append(out, Diagnostic{
				Pos: pkg.Fset.Position(ph.Decl.Name.Pos()),
				Message: fmt.Sprintf("//ckptvet:phase names unknown pattern provider %q (no function or var with a spec.Pattern literal found)",
					ph.Provider),
			})
			continue
		}
		if pattern.Opaque {
			// A dynamically built pattern is out of static reach: the
			// phase effectively runs unchecked. Say so, unless the phase
			// owner has acknowledged it.
			if !ph.Opaque {
				out = append(out, Diagnostic{
					Pos: pkg.Fset.Position(ph.Decl.Name.Pos()),
					Message: fmt.Sprintf("pattern %q is built dynamically and cannot be checked against phase %s's write-set; declare it as a plain composite literal, or acknowledge with %s",
						ph.Provider, ph.Decl.Name.Name, bta.OpaqueMarker),
				})
			}
			continue
		}
		classes := bta.CollectClassDecls(provPkg)
		out = append(out, checkPhase(pkg, ph.Decl, pattern, classes, writes)...)
	}
	return out
}

// checkPhase reports writes of fd that contradict the pattern.
func checkPhase(pkg *Package, fd *ast.FuncDecl, pattern *bta.PatternDecl, classes map[string]*bta.ClassDecl, ws *bta.WriteSets) []Diagnostic {
	byGoType := make(map[string]*bta.ClassDecl)
	for _, c := range classes {
		if c.GoTypeName != "" {
			byGoType[c.GoTypeName] = c
		}
	}
	reachable := bta.ReachableClasses(classes, pattern)

	var out []Diagnostic
	for _, w := range ws.Of(bta.FuncObject(pkg.analysisPkg(), fd)) {
		class, ok := byGoType[w.TypeName]
		if !ok {
			continue // type has no specialization class: generic driver territory
		}
		if pattern.Classes[class.Name] == bta.ClassUnmodifiedVal {
			out = append(out, Diagnostic{
				Pos: pkg.Fset.Position(w.Pos),
				Message: fmt.Sprintf("phase %s writes class %s (%s), but pattern %q declares the class unmodified; the specialized plan will skip the change",
					fd.Name.Name, class.Name, w.Desc, pattern.Name),
			})
			continue
		}
		if !reachable[class.Name] {
			out = append(out, Diagnostic{
				Pos: pkg.Fset.Position(w.Pos),
				Message: fmt.Sprintf("phase %s writes class %s (%s), but pattern %q prunes every traversal path to it; the specialized plan will never record the change",
					fd.Name.Name, class.Name, w.Desc, pattern.Name),
			})
		}
	}
	return out
}
