package ckptlint

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"strings"

	"ickpt/internal/bta"
)

// DirtyWriteAnalyzer flags direct writes to tracked checkpointable state —
// ckpt.Cell .V fields and `ckpt:"..."`-tagged struct fields — that bypass
// modification tracking. Such writes leave the owning object's modified
// flag clear, so the next incremental checkpoint silently omits the change:
// the exact stale-checkpoint corruption the paper's write barriers exist to
// prevent.
//
// A write is accepted when the dirty bit is provably maintained or
// irrelevant:
//
//   - it occurs inside a Record or Restore protocol method (restore-time
//     state is by definition already captured);
//   - the same function calls owner.Info.Mark() / owner.Info.MarkOn(t)
//     (or the same through CheckpointInfo()) on the same owner expression;
//   - the owner object is fresh in this function: created here via a
//     composite literal carrying ckpt.NewInfo/ckpt.RestoredInfo, or
//     returned by a New*/new* constructor — a new object's flag starts
//     set, so direct initialization is safe;
//   - the function runs the abort side of the epoch commit/abort protocol
//     (ckpt.Session.Abort/AbortAll/Ack or ckpt.Remark), which re-marks
//     every object the failed epoch touched — rollback writes there are
//     protocol-covered;
//   - the file is generated, or the line carries a suppression comment.
//
// The analyzer additionally flags raw Info.SetModified() calls outside the
// ckpt package itself: SetModified sets the flag but never enqueues the
// object into an attached tracker's mark-queue, so an O(dirty) incremental
// checkpoint (ckpt.Tracker) would silently omit the change. Mark (or
// MarkOn) maintains both. A raw SetModified still counts as dirtying its
// owner for the write diagnostics above — the two defects are reported
// separately.
func DirtyWriteAnalyzer() *Analyzer {
	return &Analyzer{
		Name: "dirtywrite",
		Doc:  "flags writes to tracked checkpoint state that bypass the modified flag",
		Run:  runDirtyWrite,
	}
}

func runDirtyWrite(pass *Pass) []Diagnostic {
	pkg := pass.Pkg
	gen := generatedFiles(pkg)
	var out []Diagnostic
	for _, f := range pkg.Files {
		if gen[f] {
			continue
		}
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			if fd.Recv != nil && (fd.Name.Name == "Record" || fd.Name.Name == "Restore") {
				continue
			}
			out = append(out, dirtyWritesIn(pkg, fd)...)
		}
	}
	return out
}

func dirtyWritesIn(pkg *Package, fd *ast.FuncDecl) []Diagnostic {
	apkg := pkg.analysisPkg()
	var writes []bta.TrackedWrite
	var rawSets []token.Pos // raw SetModified calls, flagged separately
	fresh := make(map[types.Object]bool)
	dirtied := make(map[string]bool) // owner exprString -> Mark/MarkOn/SetModified seen
	remarked := false                // abort-protocol re-mark seen

	ast.Inspect(fd.Body, func(n ast.Node) bool {
		switch st := n.(type) {
		case *ast.AssignStmt:
			if st.Tok == token.DEFINE {
				markFresh(pkg, st, fresh)
			}
			for _, lhs := range st.Lhs {
				if w, ok := bta.ClassifyWrite(apkg, lhs); ok {
					writes = append(writes, w)
				}
			}
		case *ast.IncDecStmt:
			if w, ok := bta.ClassifyWrite(apkg, st.X); ok {
				writes = append(writes, w)
			}
		case *ast.CallExpr:
			if owner, method, ok := infoDirtyCall(pkg, st); ok {
				dirtied[owner] = true
				if method == "SetModified" && pkg.PkgPath != "ickpt/ckpt" {
					rawSets = append(rawSets, st.Pos())
				}
			}
			if remarksClearedFlags(pkg, st) {
				remarked = true
			}
		}
		return true
	})
	if remarked {
		// The function runs the abort side of the commit/abort protocol:
		// Session.Abort/AbortAll/Ack (or raw ckpt.Remark) re-marks every
		// object the failed epoch touched, so direct rollback writes here
		// keep their dirty bit through the protocol, not SetModified.
		return nil
	}

	var out []Diagnostic
	for _, pos := range rawSets {
		out = append(out, Diagnostic{
			Pos: pkg.Fset.Position(pos),
			Message: "raw Info.SetModified sets the flag but bypasses the dirty index; " +
				"call Info.Mark() (or MarkOn) so an attached tracker enqueues the object",
		})
	}
	for _, w := range writes {
		if w.Owner == nil {
			continue
		}
		if obj := rootObject(pkg, w.Owner); obj != nil && fresh[obj] {
			continue
		}
		if dirtied[exprString(pkg.Fset, w.Owner)] {
			continue
		}
		ownerStr := exprString(pkg.Fset, w.Owner)
		var msg string
		if w.Cell {
			msg = fmt.Sprintf("direct write to tracked cell %s.%s bypasses modification tracking; use %s.%s.Set(&%s.Info, ...) or call %s.Info.Mark()",
				ownerStr, w.Field, ownerStr, strings.TrimSuffix(w.Field, ".V"), ownerStr, ownerStr)
		} else {
			msg = fmt.Sprintf("write to ckpt-tagged field %s.%s does not mark %s modified; call %s.Info.Mark() or use a ckpt.Cell",
				ownerStr, w.Field, ownerStr, ownerStr)
		}
		out = append(out, Diagnostic{Pos: pkg.Fset.Position(w.Pos), Message: msg})
	}
	return out
}

// markFresh records locals bound to freshly created checkpointable objects:
// composite literals carrying a ckpt.NewInfo/ckpt.RestoredInfo call, or
// calls to New*/new* constructors. A fresh object's modified flag starts
// set, so direct initialization writes are safe.
func markFresh(pkg *Package, st *ast.AssignStmt, fresh map[types.Object]bool) {
	if len(st.Lhs) != len(st.Rhs) {
		return
	}
	for i, lhs := range st.Lhs {
		id, ok := lhs.(*ast.Ident)
		if !ok || !freshExpr(pkg, st.Rhs[i]) {
			continue
		}
		if obj := pkg.Info.Defs[id]; obj != nil {
			fresh[obj] = true
		}
	}
}

// freshExpr reports whether e evaluates to a freshly created object.
func freshExpr(pkg *Package, e ast.Expr) bool {
	switch ex := e.(type) {
	case *ast.UnaryExpr:
		if ex.Op == token.AND {
			return freshExpr(pkg, ex.X)
		}
	case *ast.CompositeLit:
		found := false
		ast.Inspect(ex, func(n ast.Node) bool {
			if call, ok := n.(*ast.CallExpr); ok {
				if s, ok := call.Fun.(*ast.SelectorExpr); ok &&
					(s.Sel.Name == "NewInfo" || s.Sel.Name == "RestoredInfo") {
					if tv, ok := pkg.Info.Types[call]; ok && isCkptNamed(tv.Type, "Info") {
						found = true
						return false
					}
				}
			}
			return true
		})
		return found
	case *ast.CallExpr:
		name := ""
		switch fun := ex.Fun.(type) {
		case *ast.Ident:
			name = fun.Name
		case *ast.SelectorExpr:
			name = fun.Sel.Name
		case *ast.IndexExpr: // generic instantiation
			if id, ok := fun.X.(*ast.Ident); ok {
				name = id.Name
			}
		}
		return strings.HasPrefix(name, "New") || strings.HasPrefix(name, "new")
	}
	return false
}

// infoDirtyCall matches the calls that dirty an owner's Info —
// owner.Info.Mark(), owner.Info.MarkOn(t), owner.Info.SetModified(), and
// the same through owner.CheckpointInfo() — returning the printed owner
// expression and the method name.
func infoDirtyCall(pkg *Package, call *ast.CallExpr) (owner, method string, ok bool) {
	sel, isSel := call.Fun.(*ast.SelectorExpr)
	if !isSel {
		return "", "", false
	}
	switch sel.Sel.Name {
	case "Mark", "MarkOn", "SetModified":
	default:
		return "", "", false
	}
	if tv, has := pkg.Info.Types[sel.X]; !has || !isCkptNamed(tv.Type, "Info") {
		return "", "", false
	}
	switch x := sel.X.(type) {
	case *ast.SelectorExpr: // owner.Info.Mark()
		return exprString(pkg.Fset, x.X), sel.Sel.Name, true
	case *ast.CallExpr: // owner.CheckpointInfo().Mark()
		if inner, isSel := x.Fun.(*ast.SelectorExpr); isSel && inner.Sel.Name == "CheckpointInfo" {
			return exprString(pkg.Fset, inner.X), sel.Sel.Name, true
		}
	}
	return "", "", false
}

// rootObject walks to the base identifier of an owner expression and
// returns its object.
func rootObject(pkg *Package, e ast.Expr) types.Object {
	for {
		switch ex := e.(type) {
		case *ast.Ident:
			if obj := pkg.Info.Uses[ex]; obj != nil {
				return obj
			}
			return pkg.Info.Defs[ex]
		case *ast.SelectorExpr:
			e = ex.X
		case *ast.IndexExpr:
			e = ex.X
		case *ast.StarExpr:
			e = ex.X
		case *ast.ParenExpr:
			e = ex.X
		default:
			return nil
		}
	}
}
