package ckptlint_test

import (
	"os"
	"regexp"
	"strings"
	"testing"

	"ickpt/ckptlint"
)

// fixtureAnalyzer maps each fixture package (by import-path basename) to
// the analyzer it exercises.
var fixtureAnalyzer = map[string]string{
	"dirtywrite":  "dirtywrite",
	"recordfold":  "recordfold",
	"regcheck":    "regcheck",
	"patternspec": "patternspec",
}

// wantRx matches one `// want` comment; each backtick-quoted segment is a
// regexp one diagnostic on that line must match.
var (
	wantRx    = regexp.MustCompile(`//\s*want\s+(.+)$`)
	patternRx = regexp.MustCompile("`([^`]+)`")
)

// want is one expected diagnostic.
type want struct {
	file    string
	line    int
	rx      *regexp.Regexp
	matched bool
}

// TestFixtures runs each analyzer over its seeded fixture package and
// requires an exact correspondence between the `// want` comments and the
// reported diagnostics — every want matched, no diagnostic unaccounted
// for, and at least two diagnostics per analyzer.
func TestFixtures(t *testing.T) {
	pkgs, err := ckptlint.Load("..", "ickpt/internal/lintfixtures/...")
	if err != nil {
		t.Fatal(err)
	}
	if len(pkgs) != len(fixtureAnalyzer) {
		t.Fatalf("loaded %d fixture packages, want %d", len(pkgs), len(fixtureAnalyzer))
	}
	byName := make(map[string]*ckptlint.Analyzer)
	for _, a := range ckptlint.Analyzers() {
		byName[a.Name] = a
	}
	for _, pkg := range pkgs {
		base := pkg.PkgPath[strings.LastIndex(pkg.PkgPath, "/")+1:]
		name, ok := fixtureAnalyzer[base]
		if !ok {
			t.Errorf("fixture package %s has no analyzer mapping", pkg.PkgPath)
			continue
		}
		t.Run(base, func(t *testing.T) {
			checkFixture(t, pkg, byName[name])
		})
	}
}

func checkFixture(t *testing.T, pkg *ckptlint.Package, a *ckptlint.Analyzer) {
	wants := collectWants(t, pkg.GoFiles)
	diags := ckptlint.Run([]*ckptlint.Package{pkg}, []*ckptlint.Analyzer{a})

	if len(diags) < 2 {
		t.Errorf("%s reported %d diagnostics on its fixture, want at least 2", a.Name, len(diags))
	}
	for _, d := range diags {
		if !claim(wants, d.Pos.Filename, d.Pos.Line, d.Message) {
			t.Errorf("unexpected diagnostic: %s", d)
		}
	}
	for _, w := range wants {
		if !w.matched {
			t.Errorf("%s:%d: want %q, but no diagnostic matched", w.file, w.line, w.rx)
		}
	}
}

// collectWants parses the fixture sources for want comments.
func collectWants(t *testing.T, files []string) []*want {
	var wants []*want
	for _, file := range files {
		src, err := os.ReadFile(file)
		if err != nil {
			t.Fatal(err)
		}
		for i, line := range strings.Split(string(src), "\n") {
			m := wantRx.FindStringSubmatch(line)
			if m == nil {
				continue
			}
			for _, pm := range patternRx.FindAllStringSubmatch(m[1], -1) {
				rx, err := regexp.Compile(pm[1])
				if err != nil {
					t.Fatalf("%s:%d: bad want regexp: %v", file, i+1, err)
				}
				wants = append(wants, &want{file: file, line: i + 1, rx: rx})
			}
		}
	}
	return wants
}

// claim marks the first unmatched want on the diagnostic's line whose
// regexp matches the message.
func claim(wants []*want, file string, line int, message string) bool {
	for _, w := range wants {
		if !w.matched && w.file == file && w.line == line && w.rx.MatchString(message) {
			w.matched = true
			return true
		}
	}
	return false
}
