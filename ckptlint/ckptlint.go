// Package ckptlint statically verifies the conventions the incremental
// checkpointing protocol relies on but cannot check at run time.
//
// The paper's incremental discipline is sound only if three hand-maintained
// conventions hold: every mutation of checkpointable state sets the
// object's modified flag, hand-written Record/Fold/Restore methods agree on
// field and child order, and a phase's declared modification Pattern really
// over-approximates what the phase writes. A single direct write to a
// tracked field silently produces stale incremental checkpoints. In the
// lineage of the binding-time analyses that Tempo/JSpec run over class
// files, ckptlint verifies these invariants ahead of time from source,
// turning silent checkpoint corruption into build-time diagnostics.
//
// Four analyzers make up the suite:
//
//   - dirtywrite: direct writes to tracked state that bypass the dirty bit
//   - recordfold: Record/Fold/Restore symmetry of hand-written protocol
//     methods
//   - regcheck: every Restorable type has a stable registry entry
//   - patternspec: a phase's static write-set respects its declared
//     spec.Pattern
//
// Run the suite with cmd/ckptvet, or embed it via Load, Analyzers and Run.
// Generated files (the standard "Code generated ... DO NOT EDIT." marker,
// see internal/genmark) are exempt: their generator is responsible for
// them. Individual findings can be waived with a suppression comment on or
// immediately above the flagged line:
//
//	//ckptvet:ignore <analyzer> <reason>
package ckptlint

import (
	"fmt"
	"go/ast"
	"go/constant"
	"go/printer"
	"go/token"
	"go/types"
	"sort"
	"strings"

	"ickpt/internal/genmark"
)

// Diagnostic is one finding.
type Diagnostic struct {
	// Pos locates the finding.
	Pos token.Position
	// Analyzer names the analyzer that produced the finding.
	Analyzer string
	// Message describes the finding.
	Message string
}

// String renders the diagnostic in file:line:col: analyzer: message form.
func (d Diagnostic) String() string {
	return fmt.Sprintf("%s:%d:%d: %s: %s", d.Pos.Filename, d.Pos.Line, d.Pos.Column, d.Analyzer, d.Message)
}

// Pass is the per-package unit of work handed to an analyzer.
type Pass struct {
	// Pkg is the package under analysis.
	Pkg *Package
	// All is every package of the load, for whole-program facts such as
	// registry registrations living in a different package.
	All []*Package
}

// Analyzer is one check of the suite.
type Analyzer struct {
	// Name is the analyzer's short name, used in diagnostics and
	// suppression comments.
	Name string
	// Doc is a one-line description.
	Doc string
	// Run analyzes one package.
	Run func(pass *Pass) []Diagnostic
}

// Analyzers returns the full suite in a fixed order.
func Analyzers() []*Analyzer {
	return []*Analyzer{
		DirtyWriteAnalyzer(),
		RecordFoldAnalyzer(),
		RegCheckAnalyzer(),
		PatternSpecAnalyzer(),
	}
}

// Run applies the analyzers to every package and returns the surviving
// diagnostics sorted by position. Findings in generated files and findings
// waived by suppression comments are dropped.
func Run(pkgs []*Package, analyzers []*Analyzer) []Diagnostic {
	var out []Diagnostic
	for _, pkg := range pkgs {
		sup := newSuppressions(pkg)
		pass := &Pass{Pkg: pkg, All: pkgs}
		for _, a := range analyzers {
			for _, d := range a.Run(pass) {
				d.Analyzer = a.Name
				if sup.waived(a.Name, d.Pos) {
					continue
				}
				out = append(out, d)
			}
		}
	}
	sort.Slice(out, func(i, j int) bool {
		a, b := out[i], out[j]
		if a.Pos.Filename != b.Pos.Filename {
			return a.Pos.Filename < b.Pos.Filename
		}
		if a.Pos.Line != b.Pos.Line {
			return a.Pos.Line < b.Pos.Line
		}
		if a.Pos.Column != b.Pos.Column {
			return a.Pos.Column < b.Pos.Column
		}
		return a.Analyzer < b.Analyzer
	})
	return out
}

// ignorePrefix starts a suppression comment.
const ignorePrefix = "//ckptvet:ignore"

// suppressions indexes a package's //ckptvet:ignore comments by file and
// line.
type suppressions struct {
	// byLine maps filename -> line -> suppressed analyzer names.
	byLine map[string]map[int][]string
}

func newSuppressions(pkg *Package) *suppressions {
	s := &suppressions{byLine: make(map[string]map[int][]string)}
	for _, f := range pkg.Files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				if !strings.HasPrefix(c.Text, ignorePrefix) {
					continue
				}
				rest := strings.TrimSpace(strings.TrimPrefix(c.Text, ignorePrefix))
				fields := strings.Fields(rest)
				if len(fields) == 0 {
					continue
				}
				pos := pkg.Fset.Position(c.Pos())
				lines := s.byLine[pos.Filename]
				if lines == nil {
					lines = make(map[int][]string)
					s.byLine[pos.Filename] = lines
				}
				lines[pos.Line] = append(lines[pos.Line], fields[0])
			}
		}
	}
	return s
}

// waived reports whether a suppression for analyzer covers pos: the comment
// sits on the same line or the line directly above.
func (s *suppressions) waived(analyzer string, pos token.Position) bool {
	lines := s.byLine[pos.Filename]
	if lines == nil {
		return false
	}
	for _, line := range []int{pos.Line, pos.Line - 1} {
		for _, name := range lines[line] {
			if name == analyzer || name == "all" {
				return true
			}
		}
	}
	return false
}

// ---- shared helpers ----

// ckptPath is the import path of the checkpoint runtime.
const ckptPath = "ickpt/ckpt"

// generatedFiles returns the set of the package's files carrying the
// generated-code marker.
func generatedFiles(pkg *Package) map[*ast.File]bool {
	gen := make(map[*ast.File]bool)
	for _, f := range pkg.Files {
		if genmark.ASTIsGenerated(f) {
			gen[f] = true
		}
	}
	return gen
}

// fileOf returns the file containing pos.
func fileOf(pkg *Package, pos token.Pos) *ast.File {
	for _, f := range pkg.Files {
		if f.FileStart <= pos && pos <= f.FileEnd {
			return f
		}
	}
	return nil
}

// ckptScope returns the scope of the ickpt/ckpt package as seen by pkg: the
// package itself if pkg is it, or the imported view.
func ckptScope(pkg *Package) *types.Scope {
	if pkg.Types.Path() == ckptPath {
		return pkg.Types.Scope()
	}
	for _, imp := range pkg.Types.Imports() {
		if imp.Path() == ckptPath {
			return imp.Scope()
		}
	}
	return nil
}

// lookupInterface returns the named interface from the ckpt package, as
// seen by pkg, or nil.
func lookupInterface(pkg *Package, name string) *types.Interface {
	scope := ckptScope(pkg)
	if scope == nil {
		return nil
	}
	obj := scope.Lookup(name)
	if obj == nil {
		return nil
	}
	iface, _ := obj.Type().Underlying().(*types.Interface)
	return iface
}

// isCkptNamed reports whether t (after unwrapping pointers and type
// arguments) is the named type ickpt/ckpt.name.
func isCkptNamed(t types.Type, name string) bool {
	if ptr, ok := t.(*types.Pointer); ok {
		t = ptr.Elem()
	}
	named, ok := t.(*types.Named)
	if !ok {
		return false
	}
	obj := named.Obj()
	return obj != nil && obj.Pkg() != nil && obj.Pkg().Path() == ckptPath && obj.Name() == name
}

// namedOf unwraps pointers and returns the named type behind t, or nil.
func namedOf(t types.Type) *types.Named {
	for {
		switch tt := t.(type) {
		case *types.Pointer:
			t = tt.Elem()
		case *types.Named:
			return tt
		default:
			return nil
		}
	}
}

// exprString renders an expression compactly for messages and structural
// comparison.
func exprString(fset *token.FileSet, e ast.Expr) string {
	var sb strings.Builder
	if err := printer.Fprint(&sb, fset, e); err != nil {
		return ""
	}
	return sb.String()
}

// constString returns the compile-time string value of e, if it has one.
func constString(pkg *Package, e ast.Expr) (string, bool) {
	tv, ok := pkg.Info.Types[e]
	if !ok || tv.Value == nil || tv.Value.Kind() != constant.String {
		return "", false
	}
	return constant.StringVal(tv.Value), true
}
