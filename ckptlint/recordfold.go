package ckptlint

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"strings"
)

// RecordFoldAnalyzer checks hand-written checkpoint protocol methods for
// the symmetry the wire format requires:
//
//   - Record writes exactly one child id per child that Fold visits, in the
//     same order (the record convention of ckpt.Checkpointable);
//   - Restore decodes the same wire kinds, in the same order, that Record
//     encodes.
//
// An asymmetric trio still compiles and may even round-trip on some inputs,
// but produces checkpoints that rebuild into a corrupted object graph — or
// fail with ckpt.ErrBadBody far from the defect. Generated protocol files
// (the "Code generated" marker) are trusted to their generator and skipped.
//
// The extraction is syntactic and deliberately conservative: a statement
// containing an .Info.ID() call is one child-id write; every other encoder
// or decoder call is one scalar operation of that call's wire kind. Methods
// that delegate their encoding elsewhere are skipped rather than guessed
// at.
func RecordFoldAnalyzer() *Analyzer {
	return &Analyzer{
		Name: "recordfold",
		Doc:  "checks Record/Fold/Restore symmetry of hand-written protocol methods",
		Run:  runRecordFold,
	}
}

// wireOp is one linearized protocol operation.
type wireOp struct {
	kind string // encoder/decoder method name, or "childid"
	path string // child path relative to the receiver, for childid ops
	pos  token.Pos
}

// protoMethods collects one type's hand-written protocol methods.
type protoMethods struct {
	record, fold, restore *ast.FuncDecl
}

func runRecordFold(pass *Pass) []Diagnostic {
	pkg := pass.Pkg
	gen := generatedFiles(pkg)

	byType := make(map[string]*protoMethods)
	order := []string{}
	for _, f := range pkg.Files {
		if gen[f] {
			continue
		}
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Recv == nil || fd.Body == nil {
				continue
			}
			name := recvTypeName(fd)
			if name == "" {
				continue
			}
			pm := byType[name]
			if pm == nil {
				pm = &protoMethods{}
				byType[name] = pm
				order = append(order, name)
			}
			switch fd.Name.Name {
			case "Record":
				pm.record = fd
			case "Fold":
				pm.fold = fd
			case "Restore":
				pm.restore = fd
			}
		}
	}

	var out []Diagnostic
	for _, name := range order {
		pm := byType[name]
		if pm.record == nil {
			continue
		}
		recOps, ok := encodeOps(pkg, pm.record)
		if !ok {
			continue // delegating or opaque Record: nothing to compare
		}
		// A Fold that drives the commit/abort protocol (Session.Abort /
		// Commit / ckpt.Remark) wraps its child traversal in failure
		// control flow — retries and rollbacks — that the linear child
		// extraction cannot model; skip it rather than guess. The same
		// goes for a Fold that consults the writer's delta layer
		// (Writer.Shadow): its branches traverse per shadow state, and
		// the full-vs-delta decision itself lives in the emitter, so the
		// fold is sound regardless of which branch runs.
		if pm.fold != nil && !usesSessionProtocol(pkg, pm.fold) && !usesDeltaShadow(pkg, pm.fold) {
			out = append(out, checkFoldSymmetry(pkg, name, recOps, pm.fold)...)
		}
		if pm.restore != nil {
			out = append(out, checkRestoreSymmetry(pkg, name, recOps, pm.restore)...)
		}
	}
	return out
}

// recvTypeName returns the receiver's type name.
func recvTypeName(fd *ast.FuncDecl) string {
	t := fd.Recv.List[0].Type
	if star, ok := t.(*ast.StarExpr); ok {
		t = star.X
	}
	switch tt := t.(type) {
	case *ast.Ident:
		return tt.Name
	case *ast.IndexExpr: // generic receiver
		if id, ok := tt.X.(*ast.Ident); ok {
			return id.Name
		}
	}
	return ""
}

// usesDeltaShadow reports whether fd consults the writer's shadow cache
// (Writer.Shadow). A delta-aware fold adapts its traversal to the delta
// layer — re-anchoring a patch chain, forcing an eager re-emit so a shadow
// stays warm — by branching on shadow state, which puts the same child
// behind several exclusive branches the linear extraction would count as
// repeat visits. Such folds are skipped: the emitter makes the
// full-vs-delta decision per record, so whichever branch runs, the record
// convention holds.
func usesDeltaShadow(pkg *Package, fd *ast.FuncDecl) bool {
	found := false
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		if found {
			return false
		}
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		sel, ok := call.Fun.(*ast.SelectorExpr)
		if !ok || sel.Sel.Name != "Shadow" || len(call.Args) != 0 {
			return true
		}
		if tv, ok := pkg.Info.Types[sel.X]; ok && isCkptNamed(tv.Type, "Writer") {
			found = true
			return false
		}
		return true
	})
	return found
}

// checkFoldSymmetry compares Record's child-id order against Fold's
// traversal order.
func checkFoldSymmetry(pkg *Package, typeName string, recOps []wireOp, fold *ast.FuncDecl) []Diagnostic {
	var recChildren []wireOp
	for _, op := range recOps {
		if op.kind == "childid" {
			recChildren = append(recChildren, op)
		}
	}
	foldChildren := foldOps(pkg, fold)

	var out []Diagnostic
	if len(recChildren) != len(foldChildren) {
		out = append(out, Diagnostic{
			Pos: pkg.Fset.Position(fold.Name.Pos()),
			Message: fmt.Sprintf("%s.Record writes %d child id(s) (%s) but %s.Fold visits %d child(ren) (%s); the record convention requires one id per folded child",
				typeName, len(recChildren), childPaths(recChildren),
				typeName, len(foldChildren), childPaths(foldChildren)),
		})
		return out
	}
	for i := range recChildren {
		if recChildren[i].path != foldChildren[i].path {
			out = append(out, Diagnostic{
				Pos: pkg.Fset.Position(foldChildren[i].pos),
				Message: fmt.Sprintf("%s.Fold visits child %s at position %d, but %s.Record writes the id of %s there; Record and Fold must agree on child order",
					typeName, foldChildren[i].path, i+1, typeName, recChildren[i].path),
			})
			return out
		}
	}
	return out
}

// checkRestoreSymmetry compares Record's encode sequence against Restore's
// decode sequence.
func checkRestoreSymmetry(pkg *Package, typeName string, recOps []wireOp, restore *ast.FuncDecl) []Diagnostic {
	resOps, ok := decodeOps(pkg, restore)
	if !ok {
		return nil
	}
	n := len(recOps)
	if len(resOps) < n {
		n = len(resOps)
	}
	for i := 0; i < n; i++ {
		if !wireKindsMatch(recOps[i].kind, resOps[i].kind) {
			return []Diagnostic{{
				Pos: pkg.Fset.Position(resOps[i].pos),
				Message: fmt.Sprintf("%s.Restore decodes %s at wire position %d, but %s.Record encodes %s there; Restore must read fields in the order Record wrote them",
					typeName, opName(resOps[i]), i+1, typeName, opName(recOps[i])),
			}}
		}
	}
	if len(recOps) != len(resOps) {
		return []Diagnostic{{
			Pos: pkg.Fset.Position(restore.Name.Pos()),
			Message: fmt.Sprintf("%s.Record encodes %d wire value(s) but %s.Restore decodes %d; the sequences must have equal length",
				typeName, len(recOps), typeName, len(resOps)),
		}}
	}
	return nil
}

func opName(op wireOp) string {
	if op.kind == "childid" {
		if op.path != "" {
			return "a child id (" + op.path + ")"
		}
		return "a child id"
	}
	return "wire." + op.kind
}

func childPaths(ops []wireOp) string {
	if len(ops) == 0 {
		return "none"
	}
	paths := make([]string, len(ops))
	for i, op := range ops {
		paths[i] = op.path
	}
	return strings.Join(paths, ", ")
}

// encoderKinds are the wire.Encoder methods that append exactly one value.
var encoderKinds = map[string]bool{
	"Uvarint": true, "Varint": true, "Uint32": true, "Uint64": true,
	"Float64": true, "Bool": true, "Byte": true, "String": true,
	"BytesField": true,
}

// decoderKinds are the wire.Decoder methods that consume exactly one value.
var decoderKinds = map[string]bool{
	"Uvarint": true, "Varint": true, "Uint32": true, "Uint64": true,
	"Float64": true, "Bool": true, "Byte": true, "String": true,
	"BytesField": true,
}

// wireKindsMatch reports whether an encoded kind and a decoded kind move
// the same wire bytes. Encoder and Decoder use matching method names, and a
// child id is encoded as a uvarint.
func wireKindsMatch(enc, dec string) bool {
	if enc == dec {
		return true
	}
	if enc == "childid" && dec == "Uvarint" {
		return true
	}
	if enc == "Uvarint" && dec == "childid" {
		return true
	}
	return false
}

// encodeOps linearizes a Record body into wire operations. It returns
// ok=false when the method performs no recognizable encoding at all (for
// example pure delegation), in which case symmetry cannot be judged.
func encodeOps(pkg *Package, fd *ast.FuncDecl) ([]wireOp, bool) {
	ops := linearize(pkg, fd.Body.List, func(pkg *Package, call *ast.CallExpr) (wireOp, bool) {
		sel, ok := call.Fun.(*ast.SelectorExpr)
		if !ok || !encoderKinds[sel.Sel.Name] {
			return wireOp{}, false
		}
		if tv, ok := pkg.Info.Types[sel.X]; !ok || !isWireType(tv.Type, "Encoder") {
			return wireOp{}, false
		}
		return wireOp{kind: sel.Sel.Name, pos: call.Pos()}, true
	})
	return ops, len(ops) > 0
}

// decodeOps linearizes a Restore body. Decoder calls nested inside a
// ckpt.ResolveAs argument list are child-id reads.
func decodeOps(pkg *Package, fd *ast.FuncDecl) ([]wireOp, bool) {
	resolveArgs := make(map[ast.Node]bool)
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		if isResolveCall(call) {
			for _, arg := range call.Args {
				resolveArgs[arg] = true
			}
		}
		return true
	})

	ops := linearize(pkg, fd.Body.List, func(pkg *Package, call *ast.CallExpr) (wireOp, bool) {
		sel, ok := call.Fun.(*ast.SelectorExpr)
		if !ok || !decoderKinds[sel.Sel.Name] {
			return wireOp{}, false
		}
		if tv, ok := pkg.Info.Types[sel.X]; !ok || !isWireType(tv.Type, "Decoder") {
			return wireOp{}, false
		}
		return wireOp{kind: sel.Sel.Name, pos: call.Pos()}, true
	})

	// Relabel decoder reads that feed a resolver as child ids.
	for i, op := range ops {
		node := containingResolveArg(fd.Body, op.pos, resolveArgs)
		if node != nil {
			ops[i].kind = "childid"
		}
	}
	return ops, len(ops) > 0
}

// isResolveCall matches ckpt.ResolveAs[...](res, ...) and res.Resolve(...)
// style child resolution.
func isResolveCall(call *ast.CallExpr) bool {
	switch fun := call.Fun.(type) {
	case *ast.IndexExpr:
		if sel, ok := fun.X.(*ast.SelectorExpr); ok {
			return sel.Sel.Name == "ResolveAs"
		}
		if id, ok := fun.X.(*ast.Ident); ok {
			return id.Name == "ResolveAs"
		}
	case *ast.SelectorExpr:
		return fun.Sel.Name == "ResolveAs" || fun.Sel.Name == "Resolve"
	}
	return false
}

// containingResolveArg returns the resolver argument node containing pos,
// or nil.
func containingResolveArg(root ast.Node, pos token.Pos, resolveArgs map[ast.Node]bool) ast.Node {
	var found ast.Node
	ast.Inspect(root, func(n ast.Node) bool {
		if n == nil || found != nil {
			return false
		}
		if resolveArgs[n] && n.Pos() <= pos && pos < n.End() {
			found = n
			return false
		}
		return true
	})
	return found
}

// isWireType reports whether t is (a pointer to) ickpt/wire.name.
func isWireType(t types.Type, name string) bool {
	if ptr, ok := t.(*types.Pointer); ok {
		t = ptr.Elem()
	}
	named, ok := t.(*types.Named)
	if !ok {
		return false
	}
	obj := named.Obj()
	return obj != nil && obj.Pkg() != nil && obj.Pkg().Path() == "ickpt/wire" && obj.Name() == name
}

// linearize walks statements in source order. A statement whose subtree
// contains .Info.ID() calls contributes one childid op per call (this
// absorbs the canonical `if c != nil { id } else { NilID }` shape and
// helper wrappers); any other statement contributes one op per matching
// encoder/decoder call.
func linearize(pkg *Package, stmts []ast.Stmt, classify func(*Package, *ast.CallExpr) (wireOp, bool)) []wireOp {
	var ops []wireOp
	for _, stmt := range stmts {
		ids := infoIDCalls(pkg, stmt)
		if len(ids) > 0 {
			ops = append(ops, ids...)
			continue
		}
		ast.Inspect(stmt, func(n ast.Node) bool {
			if call, ok := n.(*ast.CallExpr); ok {
				if op, ok := classify(pkg, call); ok {
					ops = append(ops, op)
				}
			}
			return true
		})
	}
	return ops
}

// infoIDCalls finds <child>.Info.ID() calls under n, in source order,
// returning one childid op per call with the child's path relative to the
// receiver.
func infoIDCalls(pkg *Package, n ast.Node) []wireOp {
	var ops []wireOp
	ast.Inspect(n, func(node ast.Node) bool {
		call, ok := node.(*ast.CallExpr)
		if !ok {
			return true
		}
		sel, ok := call.Fun.(*ast.SelectorExpr)
		if !ok || sel.Sel.Name != "ID" {
			return true
		}
		info, ok := sel.X.(*ast.SelectorExpr)
		if !ok || info.Sel.Name != "Info" {
			return true
		}
		if tv, ok := pkg.Info.Types[sel.X]; !ok || !isCkptNamed(tv.Type, "Info") {
			return true
		}
		ops = append(ops, wireOp{kind: "childid", path: childPath(pkg, info.X), pos: call.Pos()})
		return true
	})
	return ops
}

// foldOps extracts Fold's w.Checkpoint(child) sequence.
func foldOps(pkg *Package, fd *ast.FuncDecl) []wireOp {
	var ops []wireOp
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		sel, ok := call.Fun.(*ast.SelectorExpr)
		if !ok || sel.Sel.Name != "Checkpoint" || len(call.Args) != 1 {
			return true
		}
		if tv, ok := pkg.Info.Types[sel.X]; !ok || !isCkptNamed(tv.Type, "Writer") {
			return true
		}
		ops = append(ops, wireOp{kind: "childid", path: childPath(pkg, call.Args[0]), pos: call.Pos()})
		return true
	})
	return ops
}

// childPath renders a child expression relative to the receiver: x.Owner ->
// "Owner", a.SE -> "SE". Non-selector shapes print verbatim.
func childPath(pkg *Package, e ast.Expr) string {
	if sel, ok := e.(*ast.SelectorExpr); ok {
		if _, ok := sel.X.(*ast.Ident); ok {
			return sel.Sel.Name
		}
		return childPath(pkg, sel.X) + "." + sel.Sel.Name
	}
	return exprString(pkg.Fset, e)
}
