package ckptlint_test

import (
	"strings"
	"testing"

	"ickpt/ckptlint"
)

// TestLoadNoMatchIsError pins the loader's silent-pass guard: `go list -e`
// reports a wildcard pattern matching nothing only as a stderr warning with
// exit status 0, so without an explicit check the load would return zero
// packages and the analysis run would vacuously succeed. A typo'd CI
// pattern must fail loudly instead.
func TestLoadNoMatchIsError(t *testing.T) {
	pkgs, err := ckptlint.Load("..", "ickpt/nosuchdir...")
	if err == nil {
		t.Fatalf("Load with a no-match wildcard returned %d packages and nil error, want error", len(pkgs))
	}
	if !strings.Contains(err.Error(), "matched no packages") {
		t.Errorf("Load error = %q, want it to mention the empty match", err)
	}
}

// TestLoadBadPatternIsError pins the existing behavior for patterns that
// `go list -e` does attach an Error entry to (non-wildcard misses,
// unresolvable paths): the load must fail, not skip.
func TestLoadBadPatternIsError(t *testing.T) {
	if _, err := ckptlint.Load("..", "ickpt/nosuchpkg"); err == nil {
		t.Fatal("Load with an unresolvable package path returned nil error, want error")
	}
}
