package ckptlint

import (
	"go/ast"
	"go/types"
)

// Session-protocol awareness shared by the analyzers.
//
// The epoch commit/abort protocol (ckpt.Session) is part of the
// checkpointing contract: Session.Abort / AbortAll / Ack — and the raw
// primitive ckpt.Remark — re-mark the modified flag of every object a
// failed epoch touched. Code in an abort path may therefore rewrite
// tracked state without a visible per-owner SetModified (dirtywrite), and
// a Fold that wraps child traversal in abort/retry control flow defeats
// the linear child extraction (recordfold). Both analyzers treat protocol
// calls as fulfilling the contract instead of reporting false positives.

// remarkingMethods are the Session methods that (may) re-mark cleared
// flags: Abort and AbortAll always, Ack on its error path.
var remarkingMethods = map[string]bool{
	"Abort": true, "AbortAll": true, "Ack": true,
}

// protocolMethods are all Session methods that drive the commit/abort
// protocol.
var protocolMethods = map[string]bool{
	"Abort": true, "AbortAll": true, "Ack": true,
	"Commit": true, "Observe": true,
}

// sessionMethodCall reports whether call invokes one of the given methods
// on a ckpt.Session receiver.
func sessionMethodCall(pkg *Package, call *ast.CallExpr, methods map[string]bool) bool {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok || !methods[sel.Sel.Name] {
		return false
	}
	tv, ok := pkg.Info.Types[sel.X]
	return ok && isCkptNamed(tv.Type, "Session")
}

// isCkptRemark matches the raw re-marking primitive ckpt.Remark(clears).
func isCkptRemark(pkg *Package, call *ast.CallExpr) bool {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok || sel.Sel.Name != "Remark" {
		return false
	}
	id, ok := sel.X.(*ast.Ident)
	if !ok {
		return false
	}
	pn, ok := pkg.Info.Uses[id].(*types.PkgName)
	return ok && pn.Imported().Path() == ckptPath
}

// remarksClearedFlags reports whether call re-marks modified flags through
// the abort protocol.
func remarksClearedFlags(pkg *Package, call *ast.CallExpr) bool {
	return sessionMethodCall(pkg, call, remarkingMethods) || isCkptRemark(pkg, call)
}

// usesSessionProtocol reports whether fd's body contains any epoch
// commit/abort protocol call.
func usesSessionProtocol(pkg *Package, fd *ast.FuncDecl) bool {
	found := false
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		if found {
			return false
		}
		if call, ok := n.(*ast.CallExpr); ok {
			if sessionMethodCall(pkg, call, protocolMethods) || isCkptRemark(pkg, call) {
				found = true
				return false
			}
		}
		return true
	})
	return found
}
