package ckptlint

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
)

// RegCheckAnalyzer verifies that every concrete type implementing
// ckpt.Restorable can actually be rebuilt from a checkpoint:
//
//   - some scanned package registers a factory for the type with
//     Registry.Register/MustRegister (otherwise rebuilding fails at restore
//     time with ckpt.ErrUnknownType — this analyzer moves that failure to
//     build time);
//   - the registered name is a compile-time constant, so the TypeID derived
//     from it is stable across runs and binaries;
//   - the registered name agrees with the name the type's CheckpointTypeID
//     derives its id from (a mismatch registers the factory under an id no
//     checkpoint stream contains).
//
// Types whose registration legitimately lives outside the scanned packages
// can be waived with a suppression comment on the type declaration.
func RegCheckAnalyzer() *Analyzer {
	return &Analyzer{
		Name: "regcheck",
		Doc:  "checks every Restorable type has a stable registry factory",
		Run:  runRegCheck,
	}
}

// registration is one Registry.Register/MustRegister call site.
type registration struct {
	name      string // registered name ("" when not constant)
	constName bool
	typeName  string // factory's concrete type name ("" when unresolved)
	pkgPath   string
	pos       token.Pos
	fset      *token.FileSet
}

func runRegCheck(pass *Pass) []Diagnostic {
	pkg := pass.Pkg

	// Registrations are whole-program facts: a package may register its
	// types from a sibling (for example a generated file or a catalog
	// package). Collect them across the load.
	regs := collectRegistrations(pass.All)

	iface := lookupInterface(pkg, "Restorable")
	if iface == nil {
		return nil
	}

	var out []Diagnostic

	// Non-constant registered names are reported by the package containing
	// the call.
	for _, r := range regs {
		if r.pkgPath != pkg.PkgPath || r.constName {
			continue
		}
		out = append(out, Diagnostic{
			Pos:     r.fset.Position(r.pos),
			Message: "registered type name is not a compile-time constant; the derived TypeID must be stable across runs",
		})
	}

	// Index constant registrations by concrete type.
	regged := make(map[string][]registration) // "pkgpath.TypeName" -> registrations
	for _, r := range regs {
		if r.typeName != "" {
			key := r.pkgPath + "." + r.typeName
			regged[key] = append(regged[key], r)
		}
	}

	scope := pkg.Types.Scope()
	for _, name := range scope.Names() {
		tn, ok := scope.Lookup(name).(*types.TypeName)
		if !ok || tn.IsAlias() {
			continue
		}
		named, ok := tn.Type().(*types.Named)
		if !ok || types.IsInterface(named) {
			continue
		}
		if !types.Implements(types.NewPointer(named), iface) && !types.Implements(named, iface) {
			continue
		}
		key := pkg.PkgPath + "." + name
		rs := regged[key]
		if len(rs) == 0 {
			out = append(out, Diagnostic{
				Pos: pkg.Fset.Position(tn.Pos()),
				Message: fmt.Sprintf("%s implements ckpt.Restorable but no scanned package registers a factory for it; rebuilding its checkpoints will fail with ErrUnknownType",
					name),
			})
			continue
		}
		// Cross-check the registered name against the name
		// CheckpointTypeID derives the type id from, when both resolve.
		wireName, ok := checkpointTypeName(pass, named)
		if !ok {
			continue
		}
		for _, r := range rs {
			if r.constName && r.name != wireName {
				out = append(out, Diagnostic{
					Pos: r.fset.Position(r.pos),
					Message: fmt.Sprintf("factory for %s is registered as %q, but its CheckpointTypeID derives the type id from %q; restored streams will not find the factory",
						name, r.name, wireName),
				})
			}
		}
	}
	return out
}

// collectRegistrations finds Registry.Register/MustRegister calls across
// all loaded packages.
func collectRegistrations(pkgs []*Package) []registration {
	var regs []registration
	for _, p := range pkgs {
		if p.PkgPath == ckptPath {
			// The runtime's own Register/MustRegister bodies forward a name
			// parameter; they are implementation, not registrations.
			continue
		}
		for _, f := range p.Files {
			ast.Inspect(f, func(n ast.Node) bool {
				call, ok := n.(*ast.CallExpr)
				if !ok || len(call.Args) != 2 {
					return true
				}
				sel, ok := call.Fun.(*ast.SelectorExpr)
				if !ok || (sel.Sel.Name != "Register" && sel.Sel.Name != "MustRegister") {
					return true
				}
				tv, ok := p.Info.Types[sel.X]
				if !ok || !isCkptNamed(tv.Type, "Registry") {
					return true
				}
				r := registration{pkgPath: p.PkgPath, pos: call.Pos(), fset: p.Fset}
				if s, ok := constString(p, call.Args[0]); ok {
					r.name, r.constName = s, true
				}
				if tn, tp := factoryTypeName(p, call.Args[1]); tn != "" {
					r.typeName = tn
					if tp != "" {
						r.pkgPath = tp
					}
				}
				regs = append(regs, r)
				return true
			})
		}
	}
	return regs
}

// factoryTypeName resolves the concrete type a factory function constructs:
// the named type of the first composite literal (or its address) in the
// factory's body. Returns the type name and its package path.
func factoryTypeName(p *Package, factory ast.Expr) (string, string) {
	fl, ok := factory.(*ast.FuncLit)
	if !ok {
		return "", ""
	}
	var name, pkgPath string
	ast.Inspect(fl.Body, func(n ast.Node) bool {
		if name != "" {
			return false
		}
		cl, ok := n.(*ast.CompositeLit)
		if !ok {
			return true
		}
		tv, ok := p.Info.Types[cl]
		if !ok {
			return true
		}
		if named := namedOf(tv.Type); named != nil && named.Obj() != nil {
			name = named.Obj().Name()
			if named.Obj().Pkg() != nil {
				pkgPath = named.Obj().Pkg().Path()
			}
			return false
		}
		return true
	})
	return name, pkgPath
}

// checkpointTypeName resolves the constant name the type's
// CheckpointTypeID method feeds to ckpt.TypeIDOf. The supported shape is
// the repo convention:
//
//	var typeX = ckpt.TypeIDOf("pkg.X")       // possibly via a const
//	func (x *X) CheckpointTypeID() ckpt.TypeID { return typeX }
//
// Direct `return ckpt.TypeIDOf("pkg.X")` bodies resolve too.
func checkpointTypeName(pass *Pass, named *types.Named) (string, bool) {
	pkg := pass.Pkg
	fd := methodDecl(pkg, named.Obj().Name(), "CheckpointTypeID")
	if fd == nil || fd.Body == nil || len(fd.Body.List) != 1 {
		return "", false
	}
	ret, ok := fd.Body.List[0].(*ast.ReturnStmt)
	if !ok || len(ret.Results) != 1 {
		return "", false
	}
	return typeIDName(pkg, ret.Results[0])
}

// typeIDName resolves an expression of type ckpt.TypeID to the constant
// string it was derived from.
func typeIDName(pkg *Package, e ast.Expr) (string, bool) {
	switch ex := e.(type) {
	case *ast.CallExpr: // ckpt.TypeIDOf("...")
		if sel, ok := ex.Fun.(*ast.SelectorExpr); ok && sel.Sel.Name == "TypeIDOf" && len(ex.Args) == 1 {
			return constString(pkg, ex.Args[0])
		}
	case *ast.Ident: // package var initialized from TypeIDOf
		obj := pkg.Info.Uses[ex]
		if obj == nil {
			return "", false
		}
		init := varInitExpr(pkg, obj)
		if init != nil {
			return typeIDName(pkg, init)
		}
	}
	return "", false
}

// varInitExpr finds the initializer expression of a package-level var.
func varInitExpr(pkg *Package, obj types.Object) ast.Expr {
	for _, f := range pkg.Files {
		for _, decl := range f.Decls {
			gd, ok := decl.(*ast.GenDecl)
			if !ok || gd.Tok != token.VAR {
				continue
			}
			for _, spec := range gd.Specs {
				vs, ok := spec.(*ast.ValueSpec)
				if !ok {
					continue
				}
				for i, name := range vs.Names {
					if pkg.Info.Defs[name] == obj && i < len(vs.Values) {
						return vs.Values[i]
					}
				}
			}
		}
	}
	return nil
}

// methodDecl finds the declaration of typeName's method in the package.
func methodDecl(pkg *Package, typeName, method string) *ast.FuncDecl {
	for _, f := range pkg.Files {
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Recv == nil || fd.Name.Name != method {
				continue
			}
			if recvTypeName(fd) == typeName {
				return fd
			}
		}
	}
	return nil
}
