package ckptlint

import (
	"encoding/json"
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"io"
	"os"
	"os/exec"
	"path/filepath"
	"sort"
	"strings"

	"ickpt/internal/bta"
)

// Package is one type-checked package under analysis.
type Package struct {
	// PkgPath is the package's import path.
	PkgPath string
	// Dir is the package's directory on disk.
	Dir string
	// Fset positions the package's files.
	Fset *token.FileSet
	// Files are the parsed source files, comments included, in GoFiles
	// order.
	Files []*ast.File
	// GoFiles are the absolute paths of the parsed files.
	GoFiles []string
	// Types is the type-checked package.
	Types *types.Package
	// Info carries the type-checker's expression annotations.
	Info *types.Info
}

// analysisPkg adapts the package to the internal/bta analysis library's
// loader-agnostic view. The returned struct shares the package's file set,
// files and type information.
func (p *Package) analysisPkg() *bta.Package {
	return &bta.Package{Fset: p.Fset, Files: p.Files, Types: p.Types, Info: p.Info}
}

// listPackage is the subset of `go list -json` output the loader consumes.
type listPackage struct {
	ImportPath string
	Name       string
	Dir        string
	GoFiles    []string
	Export     string
	DepOnly    bool
	Standard   bool
	Error      *struct{ Err string }
}

// Load type-checks the packages matched by patterns (relative to dir, "" for
// the current directory) and returns them sorted by import path.
//
// The loader shells out to `go list -export` for module-aware package and
// dependency resolution — the one part of the job the standard library does
// not expose — and does all parsing and type checking itself with go/parser
// and go/types. Dependencies are resolved from compiler export data, so only
// the matched packages are checked from source.
func Load(dir string, patterns ...string) ([]*Package, error) {
	if len(patterns) == 0 {
		patterns = []string{"."}
	}
	args := append([]string{
		"list", "-e", "-export",
		"-json=ImportPath,Name,Dir,GoFiles,Export,DepOnly,Standard,Error",
		"-deps",
	}, patterns...)
	cmd := exec.Command("go", args...)
	cmd.Dir = dir
	cmd.Stderr = io.Discard
	out, err := cmd.Output()
	if err != nil {
		return nil, fmt.Errorf("ckptlint: go list %s: %w", strings.Join(patterns, " "), err)
	}

	exports := make(map[string]string) // import path -> export data file
	var targets []*listPackage
	dec := json.NewDecoder(strings.NewReader(string(out)))
	for {
		var lp listPackage
		if err := dec.Decode(&lp); err == io.EOF {
			break
		} else if err != nil {
			return nil, fmt.Errorf("ckptlint: decoding go list output: %w", err)
		}
		if lp.Error != nil {
			return nil, fmt.Errorf("ckptlint: %s: %s", lp.ImportPath, lp.Error.Err)
		}
		if lp.Export != "" {
			exports[lp.ImportPath] = lp.Export
		}
		if !lp.DepOnly {
			cp := lp
			targets = append(targets, &cp)
		}
	}
	if len(targets) == 0 {
		// `go list -e` reports wildcard patterns that match nothing only as
		// a stderr warning with exit status 0. An analysis run over zero
		// packages vacuously passes — exactly the silent success a typo in a
		// CI pattern must not produce — so an empty match is a load error.
		return nil, fmt.Errorf("ckptlint: patterns matched no packages: %s", strings.Join(patterns, " "))
	}

	// One importer shared across all targets keeps dependency type
	// identities consistent within the load.
	fset := token.NewFileSet()
	lookup := func(path string) (io.ReadCloser, error) {
		exp, ok := exports[path]
		if !ok {
			return nil, fmt.Errorf("no export data for %q", path)
		}
		return os.Open(exp)
	}
	imp := importer.ForCompiler(fset, "gc", lookup)

	var pkgs []*Package
	for _, lp := range targets {
		if lp.Name == "" {
			// A matched package without even a resolved name failed to load
			// in a way `go list -e` did not attach an Error for; analyzing
			// around it would silently shrink the run's coverage.
			return nil, fmt.Errorf("ckptlint: package %s failed to resolve (no package name)", lp.ImportPath)
		}
		if len(lp.GoFiles) == 0 {
			continue // test-only package: nothing for the analyzers to parse
		}
		p := &Package{PkgPath: lp.ImportPath, Dir: lp.Dir, Fset: fset}
		for _, name := range lp.GoFiles {
			path := filepath.Join(lp.Dir, name)
			f, err := parser.ParseFile(fset, path, nil, parser.ParseComments|parser.SkipObjectResolution)
			if err != nil {
				return nil, fmt.Errorf("ckptlint: %w", err)
			}
			p.Files = append(p.Files, f)
			p.GoFiles = append(p.GoFiles, path)
		}
		p.Info = &types.Info{
			Types:      make(map[ast.Expr]types.TypeAndValue),
			Defs:       make(map[*ast.Ident]types.Object),
			Uses:       make(map[*ast.Ident]types.Object),
			Selections: make(map[*ast.SelectorExpr]*types.Selection),
		}
		conf := types.Config{
			Importer: imp,
			Error:    func(error) {}, // collect what we can; first hard error below
		}
		tp, err := conf.Check(lp.ImportPath, fset, p.Files, p.Info)
		if err != nil {
			return nil, fmt.Errorf("ckptlint: type checking %s: %w", lp.ImportPath, err)
		}
		p.Types = tp
		pkgs = append(pkgs, p)
	}
	sort.Slice(pkgs, func(i, j int) bool { return pkgs[i].PkgPath < pkgs[j].PkgPath })
	return pkgs, nil
}
